(* The chaos suite: deterministic fault injection against E1-E8-shaped
   workloads, proving the trichotomy on both kernels. With an empty fault
   schedule the faulty transport is an exact passthrough (bit-identical
   rounds, words, and sanitizer transcripts against the plain kernel).
   Under every non-empty schedule each workload ends in either a
   checker-certified answer (possibly after retries charged to the
   "recovery" phase) or a structured Fault_detected — never a silently
   wrong output. Runs standalone so CI can sweep schedules:
   CC_FAULTS="seed=9;drop:0.25" dune exec test/test_chaos.exe. *)

module S = Fault.Schedule
module C = Fault.Check
module San = Runtime.Sanitize
module K = Clique.Kernel

module FSim = Fault.Inject.Make (Clique.Sim)
module FRt = Runtime.Make (FSim)
module FP = Clique.Programs.Make (FRt)
module FRec = Fault.Recover.Make (FRt)

module FCon = Fault.Inject.Make (Clique.Congest)
module FCRt = Runtime.Make (FCon)
module FCP = Clique.Programs.Make (FCRt)
module FCRec = Fault.Recover.Make (FCRt)

(* ------------------------------------------------- shipping workloads *)

(* Ship-and-reassemble workloads: the artifact is computed once, fault
   free, outside the retry loop; what is exercised (and what the checker
   certifies) is its transfer through the possibly-faulty transport. The
   reassembly is total: malformed or missing shipped words degrade the
   artifact, they never crash the workload. *)
module Ship (R : Runtime.S) = struct
  (* Senders avoid node 0 (the collector), so no (0,0) self-message is
     ever routed — the CONGEST kernel has no self-loops. *)
  let owner n i = 1 + (i mod (n - 1))

  let scale = float_of_int (1 lsl 20)

  (* Per-edge orientation bits to node 0: payload (edge id, bit). *)
  let euler rt m bits =
    let n = R.n rt in
    let msgs =
      List.init m (fun id ->
          (owner n id, 0, [| id; (if bits.(id) then 1 else 0) |]))
    in
    let inboxes = R.route rt msgs in
    let got = Array.make m false in
    List.iter
      (fun (_src, p) ->
        if Array.length p = 2 && p.(0) >= 0 && p.(0) < m then
          got.(p.(0)) <- p.(1) land 1 = 1)
      inboxes.(0);
    got

  (* Every node broadcasts its fixed-point solution coordinate. *)
  let solver rt x =
    let n = R.n rt in
    let enc v = int_of_float (Float.round (v *. scale)) in
    let view = R.broadcast rt (Array.init n (fun v -> [| enc x.(v) |])) in
    Array.init n (fun v ->
        if Array.length view.(v) = 1 then float_of_int view.(v).(0) /. scale
        else 0.0)

  (* Per-arc integral flow values to node 0. *)
  let flow rt m f =
    let n = R.n rt in
    let msgs =
      List.init m (fun id ->
          (owner n id, 0, [| id; int_of_float (Float.round f.(id)) |]))
    in
    let inboxes = R.route rt msgs in
    let got = Array.make m 0.0 in
    List.iter
      (fun (_src, p) ->
        if Array.length p = 2 && p.(0) >= 0 && p.(0) < m then
          got.(p.(0)) <- float_of_int p.(1))
      inboxes.(0);
    got

  (* Sparsifier edges as (id, u, v, w) quadruples, width 4; invalid
     endpoints or non-positive weights are discarded on reassembly. *)
  let sparsifier rt sp =
    let n = R.n rt in
    let nodes = Graph.n sp in
    let edges = Graph.edges sp in
    let enc w = max 1 (int_of_float (Float.round (w *. 1024.0))) in
    let msgs =
      List.init (Array.length edges) (fun id ->
          let e = edges.(id) in
          (owner n id, 0, [| id; e.Graph.u; e.Graph.v; enc e.Graph.w |]))
    in
    let inboxes = R.route ~width:4 rt msgs in
    let acc = ref [] in
    List.iter
      (fun (_src, p) ->
        if Array.length p = 4 then begin
          let u = p.(1) and v = p.(2) and w = p.(3) in
          if u >= 0 && u < nodes && v >= 0 && v < nodes && u <> v && w > 0
          then
            acc :=
              { Graph.u; v; w = float_of_int w /. 1024.0 } :: !acc
        end)
      inboxes.(0);
    Graph.create nodes (List.rev !acc)
end

module ShipSim = Ship (FRt)
module ShipCon = Ship (FCRt)

(* ------------------------------------------------- shared fixed inputs *)

let n = 16

let g = Gen.connected_gnp ~seed:5L n 0.3

let geul = Gen.cycle_union ~seed:6L n 3

let euler_bits = (Euler.Orientation.orient geul).Euler.Orientation.orientation

let solver_b =
  let y = Array.init n (fun i -> float_of_int ((i * 13) mod 7) /. 5.0) in
  Graph.apply_laplacian g y

let solver_x = (Laplacian.Solver.solve g solver_b).Laplacian.Solver.x

let flow_net = Gen.layered_network ~seed:7L 3 3 5

let flow_f, flow_v =
  Dinic.max_flow flow_net ~s:0 ~t:(Digraph.n flow_net - 1)

let mcf_net, mcf_sigma = Gen.random_mcf ~seed:8L 10 30 6

let mcf_report =
  match Mcf_ssp.solve mcf_net ~sigma:mcf_sigma with
  | Some r -> r
  | None -> Alcotest.fail "fixture MCF instance must be feasible"

let sparsifier_sp =
  (Sparsify.Spectral.sparsify g).Sparsify.Spectral.sparsifier

(* --------------------------------------------- checker mutation tests *)

let expect_fail ~invariant what = function
  | C.Pass -> Alcotest.failf "%s: expected a counterexample, got pass" what
  | C.Fail { invariant = i; counterexample } ->
    Alcotest.(check string) (what ^ ": violated invariant") invariant i;
    Alcotest.(check bool) (what ^ ": counterexample is a witness") true
      (String.length counterexample > 0)

let expect_pass what = function
  | C.Pass -> ()
  | C.Fail _ as v ->
    Alcotest.failf "%s: known-good output rejected: %s" what
      (C.to_string v)

let test_check_bfs () =
  let dist = Traversal.bfs g 0 in
  expect_pass "bfs" (C.bfs_tree g ~root:0 dist);
  let d = Array.copy dist in
  d.(0) <- 1;
  expect_fail ~invariant:"root" "bfs root" (C.bfs_tree g ~root:0 d);
  let d = Array.copy dist in
  let far = ref 0 in
  Array.iteri (fun v dv -> if dv > d.(!far) then far := v) d;
  d.(!far) <- d.(!far) + 5;
  expect_fail ~invariant:"edge-level" "bfs inflated level"
    (C.bfs_tree g ~root:0 d);
  let d = Array.copy dist in
  d.(!far) <- -1;
  expect_fail ~invariant:"reachability" "bfs unreached node"
    (C.bfs_tree g ~root:0 d)

let test_check_sssp () =
  let pg =
    Graph.create 4
      [
        { Graph.u = 0; v = 1; w = 1.0 };
        { Graph.u = 1; v = 2; w = 2.0 };
        { Graph.u = 2; v = 3; w = 1.0 };
      ]
  in
  let dist = [| 0.0; 1.0; 3.0; 4.0 |] in
  expect_pass "sssp" (C.sssp pg ~src:0 dist);
  expect_fail ~invariant:"relaxation" "sssp overlong"
    (C.sssp pg ~src:0 [| 0.0; 1.0; 3.0; 4.5 |]);
  expect_fail ~invariant:"witness" "sssp unwitnessed"
    (C.sssp pg ~src:0 [| 0.0; 1.0; 3.0; 3.9 |]);
  expect_fail ~invariant:"root" "sssp nonzero source"
    (C.sssp pg ~src:0 [| 0.5; 1.0; 3.0; 4.0 |])

(* Perturb one unit of flow on an arc with an internal head, staying
   inside the arc's capacity so the capacity check cannot fire first. *)
let reroute_unit net f ~s ~t =
  let f' = Array.copy f in
  let arcs = Digraph.arcs net in
  let id = ref (-1) in
  Array.iteri
    (fun i (a : Digraph.arc) ->
      if !id < 0 && a.dst <> s && a.dst <> t then id := i)
    arcs;
  if !id < 0 then Alcotest.fail "fixture needs an internal-head arc";
  let i = !id in
  if f'.(i) +. 1.0 <= float_of_int arcs.(i).Digraph.cap then
    f'.(i) <- f'.(i) +. 1.0
  else f'.(i) <- f'.(i) -. 1.0;
  f'

let test_check_max_flow () =
  let t = Digraph.n flow_net - 1 in
  let value = float_of_int flow_v in
  expect_pass "maxflow"
    (C.max_flow flow_net ~s:0 ~t ~value flow_f);
  expect_fail ~invariant:"conservation" "maxflow rerouted unit"
    (C.max_flow flow_net ~s:0 ~t ~value (reroute_unit flow_net flow_f ~s:0 ~t));
  let f = Array.copy flow_f in
  f.(0) <- -1.0;
  expect_fail ~invariant:"capacity" "maxflow negative arc"
    (C.max_flow flow_net ~s:0 ~t ~value f);
  expect_fail ~invariant:"value" "maxflow wrong claim"
    (C.max_flow flow_net ~s:0 ~t ~value:(value +. 1.0) flow_f)

let test_check_mcf () =
  let f = mcf_report.Mcf_ssp.f and cost = mcf_report.Mcf_ssp.cost in
  expect_pass "mcf" (C.mcf mcf_net ~sigma:mcf_sigma ~cost_bound:cost f);
  (* Shift one unit within capacity: some vertex's excess no longer meets
     its demand. *)
  let f' = Array.copy f in
  let arcs = Digraph.arcs mcf_net in
  let id = ref (-1) in
  Array.iteri
    (fun i (a : Digraph.arc) ->
      if !id < 0 && f.(i) +. 1.0 <= float_of_int a.Digraph.cap then id := i)
    arcs;
  (if !id >= 0 then f'.(!id) <- f'.(!id) +. 1.0
   else f'.(0) <- f'.(0) -. 1.0);
  expect_fail ~invariant:"demand" "mcf rerouted unit"
    (C.mcf mcf_net ~sigma:mcf_sigma ~cost_bound:(cost +. 1000.0) f');
  expect_fail ~invariant:"cost" "mcf cost bound"
    (C.mcf mcf_net ~sigma:mcf_sigma ~cost_bound:(cost -. 0.5) f)

let test_check_eulerian () =
  expect_pass "eulerian" (C.eulerian geul euler_bits);
  let bits = Array.copy euler_bits in
  bits.(0) <- not bits.(0);
  expect_fail ~invariant:"in=out" "eulerian flipped edge"
    (C.eulerian geul bits);
  expect_fail ~invariant:"shape" "eulerian truncated"
    (C.eulerian geul (Array.sub euler_bits 0 (Graph.m geul - 1)))

let test_check_solver () =
  expect_pass "solver"
    (C.solver_residual ~eps:1e-3 g ~b:solver_b solver_x);
  let x = Array.copy solver_x in
  x.(0) <- x.(0) +. 1.0;
  expect_fail ~invariant:"residual" "solver perturbed coordinate"
    (C.solver_residual ~eps:1e-3 g ~b:solver_b x)

let test_check_sparsifier () =
  expect_pass "sparsifier" (C.sparsifier g sparsifier_sp);
  expect_fail ~invariant:"shape" "sparsifier node count"
    (C.sparsifier g (Graph.create (n - 1) []));
  expect_fail ~invariant:"connectivity" "sparsifier disconnected"
    (C.sparsifier g (Graph.create n []));
  let bound =
    Sparsify.Spectral.size_bound ~n ~u:(Float.max 1.0 (Graph.max_weight g))
  in
  let bloated =
    Graph.create n
      (List.init (bound + 1) (fun _ -> { Graph.u = 0; v = 1; w = 1.0 })
      @ List.init (n - 1) (fun i -> { Graph.u = i; v = i + 1; w = 1.0 }))
  in
  expect_fail ~invariant:"size-bound" "sparsifier too many edges"
    (C.sparsifier g bloated)

(* ------------------------------------------------ schedule spec tests *)

let test_schedule_spec () =
  let spec = "seed=7;drop:0.25;corrupt:0.1@phase=gather;stall:0.05@rounds=4-32" in
  (match S.of_string spec with
  | Error e -> Alcotest.failf "spec must parse: %s" e
  | Ok t ->
    Alcotest.(check int) "seed" 7 (S.seed t);
    Alcotest.(check int) "three rules" 3 (List.length (S.rules t));
    (match S.of_string (S.to_string t) with
    | Ok t' ->
      Alcotest.(check string) "to_string round-trips" (S.to_string t)
        (S.to_string t')
    | Error e -> Alcotest.failf "rendered spec must re-parse: %s" e));
  List.iter
    (fun bad ->
      match S.of_string bad with
      | Ok _ -> Alcotest.failf "spec %S must be rejected" bad
      | Error _ -> ())
    [ "drop:2.0"; "flip:0.1"; "drop:0.1@rounds=5-3"; "drop"; "seed=x" ]

let test_schedule_draw_determinism () =
  let t = S.create ~seed:42 [ S.rule S.Drop 0.5 ] in
  Alcotest.(check (float 0.0))
    "same coordinates, same draw"
    (S.draw t [ 1; 2; 3; 4 ])
    (S.draw t [ 1; 2; 3; 4 ]);
  Alcotest.(check bool) "different coordinates decorrelate" true
    (S.draw t [ 1; 2; 3; 4 ] <> S.draw t [ 1; 2; 3; 5 ]);
  let t' = S.create ~seed:43 [ S.rule S.Drop 0.5 ] in
  Alcotest.(check bool) "different seeds decorrelate" true
    (S.draw t [ 1; 2; 3; 4 ] <> S.draw t' [ 1; 2; 3; 4 ])

(* -------------------------------------------------- faults-off parity *)

(* The same deterministic pipeline driven over any runtime; parity
   compares a plain kernel against a faulty one with an empty schedule. *)
module Drive (R : Runtime.S) = struct
  module P = Clique.Programs.Make (R)
  module Sh = Ship (R)

  let run rt =
    ignore (P.bfs rt g 0);
    R.with_phase rt "ship-euler" (fun () ->
        ignore (Sh.euler rt (Graph.m geul) euler_bits));
    R.with_phase rt "ship-solver" (fun () -> ignore (Sh.solver rt solver_x));
    let tr =
      match R.sanitizer rt with
      | Some s -> San.transcript s
      | None -> Alcotest.fail "parity runs must be sanitized"
    in
    (R.rounds rt, R.words rt, tr.San.events, tr.San.shape_hash,
     tr.San.content_hash)
end

module DriveSim = Drive (K.On_sim)
module DriveFSim = Drive (FRt)
module DriveCon = Drive (K.On_congest)
module DriveFCon = Drive (FCRt)

let signature_t =
  Alcotest.(pair (triple int int int) (pair int64 int64))

let shape x = match x with r, w, e, sh, ch -> ((r, w, e), (sh, ch))

let test_parity_sim () =
  let plain =
    DriveSim.run (K.On_sim.create ~sanitize:true (Clique.Sim.create n))
  in
  let faulty =
    DriveFSim.run
      (FRt.create ~sanitize:true
         (FSim.inject ~schedule:S.empty (Clique.Sim.create n)))
  in
  Alcotest.check signature_t
    "empty schedule: rounds, words, and transcripts bit-identical"
    (shape plain) (shape faulty)

let test_parity_congest () =
  (* Complete communication topology so the routed shipments are legal on
     the CONGEST kernel too; the bfs still follows g's edges. *)
  let topo = Gen.complete n in
  let plain =
    DriveCon.run
      (K.On_congest.create ~sanitize:true (Clique.Congest.create topo))
  in
  let faulty =
    DriveFCon.run
      (FCRt.create ~sanitize:true
         (FCon.inject ~schedule:S.empty (Clique.Congest.create topo)))
  in
  Alcotest.check signature_t
    "empty schedule: rounds, words, and transcripts bit-identical"
    (shape plain) (shape faulty)

(* ------------------------------------------------- the fault schedules *)

let matrix =
  [
    ("drops", S.create ~seed:11 [ S.rule S.Drop 0.25 ]);
    ("corruption", S.create ~seed:12 [ S.rule S.Corrupt 0.3 ]);
    ( "mixed",
      S.create ~seed:13
        [
          S.rule S.Drop 0.15;
          S.rule S.Corrupt 0.15;
          S.rule S.Truncate 0.1;
          S.rule S.Stall 0.05;
          S.rule S.Crash 0.02;
        ] );
    ("first-round-burst", S.create ~seed:14 [ S.rule ~rounds:(0, 0) S.Drop 1.0 ]);
  ]
  @ (match S.of_env () with Some s -> [ ("env", s) ] | None -> [])

(* ------------------------------------------------------ trichotomy sweep *)

type outcome = Certified of { attempts : int; recovery : int } | Detected

(* Run one workload to its trichotomy verdict: a certified answer or a
   structured Fault_detected — anything else propagates and fails the
   test. Returns the injected-fault total either way. *)
let observe ~injected ~recovery run =
  let outcome =
    match run () with
    | (res : _ Fault.Recover.outcome) ->
      Certified { attempts = res.attempts; recovery = recovery () }
    | exception Fault.Recover.Fault_detected _ -> Detected
  in
  (outcome, injected ())

(* Each workload builds a fresh faulty kernel + runtime per run; what is
   swept is the transfer (and for bfs, the computation itself) under the
   schedule, certified by the matching checker. *)
let sim_workloads =
  let fresh schedule metrics =
    let tr = FSim.inject ~metrics ~schedule (Clique.Sim.create n) in
    let rt = FRt.create ~sanitize:false tr in
    let wrap run =
      observe
        ~injected:(fun () -> FSim.injected_total tr)
        ~recovery:(fun () -> FRt.phase_rounds rt "recovery")
        run
    in
    (rt, wrap)
  in
  [
    (* self_phased: bfs re-tags the ledger phase to "bfs" inside the
       retry, so its recovery cost is attributed there, not under
       "recovery"; the sweep then relies on the recovery.* counters. *)
    ( "bfs",
      `Self_phased,
      fun schedule metrics ->
        let rt, wrap = fresh schedule metrics in
        wrap (fun () ->
            FRec.run ~retries:3 ~metrics ~name:"bfs" rt
              ~check:(fun d -> C.bfs_tree g ~root:0 d)
              (fun () -> FP.bfs rt g 0)) );
    ( "euler-ship",
      `Caller_phased,
      fun schedule metrics ->
        let rt, wrap = fresh schedule metrics in
        wrap (fun () ->
            FRec.run ~retries:3 ~metrics ~name:"euler-ship" rt
              ~check:(C.eulerian geul)
              (fun () -> ShipSim.euler rt (Graph.m geul) euler_bits)) );
    ( "solver-ship",
      `Caller_phased,
      fun schedule metrics ->
        let rt, wrap = fresh schedule metrics in
        wrap (fun () ->
            FRec.run ~retries:3 ~metrics ~name:"solver-ship" rt
              ~check:(fun x -> C.solver_residual ~eps:1e-3 g ~b:solver_b x)
              (fun () -> ShipSim.solver rt solver_x)) );
    ( "maxflow-ship",
      `Caller_phased,
      fun schedule metrics ->
        let rt, wrap = fresh schedule metrics in
        let t = Digraph.n flow_net - 1 in
        wrap (fun () ->
            FRec.run ~retries:3 ~metrics ~name:"maxflow-ship" rt
              ~check:(fun f ->
                C.max_flow flow_net ~s:0 ~t ~value:(float_of_int flow_v) f)
              (fun () -> ShipSim.flow rt (Digraph.m flow_net) flow_f)) );
    ( "mcf-ship",
      `Caller_phased,
      fun schedule metrics ->
        let rt, wrap = fresh schedule metrics in
        wrap (fun () ->
            FRec.run ~retries:3 ~metrics ~name:"mcf-ship" rt
              ~check:(fun f ->
                C.mcf mcf_net ~sigma:mcf_sigma
                  ~cost_bound:mcf_report.Mcf_ssp.cost f)
              (fun () ->
                ShipSim.flow rt (Digraph.m mcf_net) mcf_report.Mcf_ssp.f)) );
    ( "sparsifier-ship",
      `Caller_phased,
      fun schedule metrics ->
        let rt, wrap = fresh schedule metrics in
        wrap (fun () ->
            FRec.run ~retries:3 ~metrics ~name:"sparsifier-ship" rt
              ~check:(C.sparsifier g)
              (fun () -> ShipSim.sparsifier rt sparsifier_sp)) );
  ]

let congest_workloads =
  let fresh topo schedule metrics =
    let tr = FCon.inject ~metrics ~schedule (Clique.Congest.create topo) in
    let rt = FCRt.create ~sanitize:false tr in
    let wrap run =
      observe
        ~injected:(fun () -> FCon.injected_total tr)
        ~recovery:(fun () -> FCRt.phase_rounds rt "recovery")
        run
    in
    (rt, wrap)
  in
  [
    ( "bfs",
      `Self_phased,
      fun schedule metrics ->
        let rt, wrap = fresh g schedule metrics in
        wrap (fun () ->
            FCRec.run ~retries:3 ~metrics ~name:"bfs" rt
              ~check:(fun d -> C.bfs_tree g ~root:0 d)
              (fun () -> FCP.bfs rt g 0)) );
    ( "euler-ship",
      `Caller_phased,
      fun schedule metrics ->
        let rt, wrap = fresh (Gen.complete n) schedule metrics in
        wrap (fun () ->
            FCRec.run ~retries:3 ~metrics ~name:"euler-ship" rt
              ~check:(C.eulerian geul)
              (fun () -> ShipCon.euler rt (Graph.m geul) euler_bits)) );
  ]

let sweep kernel workloads () =
  List.iter
    (fun (sname, schedule) ->
      let schedule_injected = ref 0 in
      List.iter
        (fun (wname, phasing, run) ->
          let what = Printf.sprintf "%s/%s/%s" kernel sname wname in
          let metrics = Metrics.create () in
          let outcome, injected = run schedule metrics in
          schedule_injected := !schedule_injected + injected;
          match outcome with
          | Certified { attempts; recovery } ->
            if attempts > 1 then begin
              (* Every retry is accounted in the recovery counters... *)
              Alcotest.(check int)
                (what ^ ": retries counted in recovery.retries")
                (attempts - 1)
                (Metrics.counter_value
                   (Metrics.counter metrics "recovery.retries"));
              (* ...and charged to the ledger's recovery phase, unless
                 the workload re-tags the phase itself. *)
              if phasing = `Caller_phased then
                Alcotest.(check bool)
                  (what ^ ": retries are charged to the recovery phase")
                  true (recovery > 0)
            end
          | Detected -> ())
        workloads;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s: schedule injected at least one fault" kernel
           sname)
        true (!schedule_injected > 0))
    matrix

(* -------------------------------------------- the successful-retry path *)

let test_recovery_path () =
  (* A 4-cycle whose stored edge directions are chosen so the all-default
     reassembly is NOT balanced: losing the whole first shipment cannot
     masquerade as a certified answer. *)
  let g4 =
    Graph.create 4
      [
        { Graph.u = 0; v = 1; w = 1.0 };
        { Graph.u = 1; v = 2; w = 1.0 };
        { Graph.u = 2; v = 3; w = 1.0 };
        { Graph.u = 0; v = 3; w = 1.0 };
      ]
  in
  let bits =
    (Euler.Orientation.orient g4).Euler.Orientation.orientation
  in
  Alcotest.(check bool) "fixture: all-false reassembly is unbalanced" false
    (C.eulerian g4 (Array.make (Graph.m g4) false) = C.Pass);
  (* Drop every message of the first transport call; the retry starts at
     a later round, outside the burst window, and goes through clean. *)
  let schedule = S.create ~seed:14 [ S.rule ~rounds:(0, 0) S.Drop 1.0 ] in
  let metrics = Metrics.create () in
  let tr = FSim.inject ~metrics ~schedule (Clique.Sim.create 4) in
  let rt = FRt.create ~sanitize:false tr in
  let res =
    FRec.run ~retries:3 ~metrics ~name:"euler-burst" rt
      ~check:(C.eulerian g4)
      (fun () -> ShipSim.euler rt (Graph.m g4) bits)
  in
  Alcotest.(check bool) "final verdict is pass" true
    (C.eulerian g4 res.Fault.Recover.value = C.Pass);
  Alcotest.(check int) "exactly one retry" 2 res.Fault.Recover.attempts;
  Alcotest.(check bool) "recovered" true res.Fault.Recover.recovered;
  Alcotest.(check bool) "recovery phase rounds > 0" true
    (FRt.phase_rounds rt "recovery" > 0);
  Alcotest.(check bool) "fault.injected.drop > 0" true
    (Metrics.counter_value (Metrics.counter metrics "fault.injected.drop")
    > 0);
  Alcotest.(check int) "recovery.recovered counter" 1
    (Metrics.counter_value (Metrics.counter metrics "recovery.recovered"));
  Alcotest.(check int) "per-kind injected count matches events" (FSim.injected_total tr)
    (List.length (FSim.events tr));
  match FSim.events tr with
  | [] -> Alcotest.fail "fault trace must record the burst"
  | e :: _ ->
    Alcotest.(check string) "trace records the kind" "drop"
      (S.kind_name e.Fault.Inject.kind);
    Alcotest.(check int) "trace records the round" 0 e.Fault.Inject.round

(* ------------------------------------------- injection replay identity *)

let test_injection_determinism () =
  let run () =
    let schedule = S.create ~seed:11 [ S.rule S.Drop 0.25 ] in
    let tr = FSim.inject ~schedule (Clique.Sim.create n) in
    let rt = FRt.create ~sanitize:false tr in
    let got = ShipSim.euler rt (Graph.m geul) euler_bits in
    (got, FSim.injected tr, List.length (FSim.events tr))
  in
  let a1, i1, e1 = run () in
  let a2, i2, e2 = run () in
  Alcotest.(check (array bool)) "same degraded artifact" a1 a2;
  Alcotest.(check (list (pair string int))) "same injected counts" i1 i2;
  Alcotest.(check int) "same event count" e1 e2;
  Alcotest.(check bool) "the drops schedule really fired" true (e1 > 0)

(* -------------------------------------------------------------- suite *)

let () =
  Alcotest.run "chaos"
    [
      ( "checkers",
        [
          Alcotest.test_case "bfs mutations" `Quick test_check_bfs;
          Alcotest.test_case "sssp mutations" `Quick test_check_sssp;
          Alcotest.test_case "maxflow mutations" `Quick test_check_max_flow;
          Alcotest.test_case "mcf mutations" `Quick test_check_mcf;
          Alcotest.test_case "eulerian mutations" `Quick test_check_eulerian;
          Alcotest.test_case "solver mutations" `Quick test_check_solver;
          Alcotest.test_case "sparsifier mutations" `Quick
            test_check_sparsifier;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "CC_FAULTS spec grammar" `Quick
            test_schedule_spec;
          Alcotest.test_case "keyed draws are deterministic" `Quick
            test_schedule_draw_determinism;
        ] );
      ( "parity",
        [
          Alcotest.test_case "faults-off bit-identity (clique)" `Quick
            test_parity_sim;
          Alcotest.test_case "faults-off bit-identity (congest)" `Quick
            test_parity_congest;
        ] );
      ( "trichotomy",
        [
          Alcotest.test_case "schedule matrix (clique)" `Quick
            (sweep "clique" sim_workloads);
          Alcotest.test_case "schedule matrix (congest)" `Quick
            (sweep "congest" congest_workloads);
          Alcotest.test_case "successful retry path" `Quick
            test_recovery_path;
          Alcotest.test_case "injection replay identity" `Quick
            test_injection_determinism;
        ] );
    ]
