(* Tests for the functorized runtime layer: bandwidth enforcement on both
   transports, route batching arithmetic at the capacity boundary, the
   ledger/trace/observer plumbing, and cross-kernel parity of the generic
   node programs. *)

module K = Clique.Kernel

let raises_bandwidth f =
  try
    ignore (f ());
    false
  with Runtime.Mailbox.Bandwidth_exceeded _ -> true

(* ----------------------------------------- bandwidth on both transports *)

let test_sim_exchange_bandwidth () =
  let sim = Clique.Sim.create 3 in
  Alcotest.(check bool) "payload of 3 words raises" true
    (raises_bandwidth (fun () ->
         Clique.Sim.exchange sim [| [ (1, [| 1; 2; 3 |]) ]; []; [] |]));
  Alcotest.(check bool) "wider width accepts it" true
    (Array.length
       (Clique.Sim.exchange ~width:3 sim [| [ (1, [| 1; 2; 3 |]) ]; []; [] |])
    = 3)

let test_sim_broadcast_bandwidth () =
  let sim = Clique.Sim.create 3 in
  (* Satellite fix: broadcast enforces the width like exchange does. *)
  Alcotest.(check bool) "3-word broadcast payload raises" true
    (raises_bandwidth (fun () ->
         Clique.Sim.broadcast sim [| [| 1; 2; 3 |]; [| 0 |]; [| 0 |] |]));
  let view =
    Clique.Sim.broadcast ~width:3 sim [| [| 1; 2; 3 |]; [| 0 |]; [| 0 |] |]
  in
  Alcotest.(check int) "explicit width accepts" 3 (Array.length view.(0));
  Alcotest.(check int) "words counted" (2 * (3 + 1 + 1))
    (Clique.Sim.words_sent sim)

let test_sim_route_bandwidth () =
  let sim = Clique.Sim.create 3 in
  (* A single message wider than [width] fits no round of any batch. *)
  Alcotest.(check bool) "3-word routed payload raises" true
    (raises_bandwidth (fun () ->
         Clique.Sim.route sim [ (0, 1, [| 1; 2; 3 |]) ]));
  ignore (Clique.Sim.route ~width:3 sim [ (0, 1, [| 1; 2; 3 |]) ])

let congest_pair () =
  (* Path 0-1-2: pair (0,1) is an edge, (0,2) is not. *)
  Clique.Congest.create (Gen.path 3)

let test_congest_exchange_bandwidth_and_edges () =
  let c = congest_pair () in
  Alcotest.(check bool) "3 words over an edge raises" true
    (raises_bandwidth (fun () ->
         Clique.Congest.exchange c [| [ (1, [| 1; 2; 3 |]) ]; []; [] |]));
  Alcotest.(check bool) "non-edge raises Not_an_edge" true
    (try
       ignore (Clique.Congest.exchange c [| [ (2, [| 1 |]) ]; []; [] |]);
       false
     with Clique.Congest.Not_an_edge { src = 0; dst = 2 } -> true)

let test_congest_route_and_broadcast () =
  let c = congest_pair () in
  Alcotest.(check bool) "route along a non-edge raises" true
    (try
       ignore (Clique.Congest.route c [ (0, 2, [| 1 |]) ]);
       false
     with Clique.Congest.Not_an_edge _ -> true);
  Alcotest.(check bool) "route payload too wide raises" true
    (raises_bandwidth (fun () ->
         Clique.Congest.route c [ (0, 1, [| 1; 2; 3 |]) ]));
  Alcotest.(check bool) "broadcast needs a complete graph" true
    (try
       ignore (Clique.Congest.broadcast c [| [| 1 |]; [| 2 |]; [| 3 |] |]);
       false
     with Clique.Congest.Not_an_edge _ -> true);
  let k = Clique.Congest.create (Gen.complete 3) in
  let view = Clique.Congest.broadcast k [| [| 1 |]; [| 2 |]; [| 3 |] |] in
  Alcotest.(check int) "complete graph broadcasts" 2 view.(1).(0);
  Alcotest.(check int) "one round" 1 (Clique.Congest.rounds k)

(* ----------------------------------------- satellite: error diagnostics *)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec loop i =
    i + nl <= hl && (String.sub hay i nl = needle || loop (i + 1))
  in
  loop 0

let test_bandwidth_error_names_context () =
  (* The exception carries (src, dst, phase, width), and its registered
     printer surfaces all of them. Sanitizing is off so the kernel's own
     check (not the sanitizer pre-check) is what fires. *)
  let rt = K.On_sim.create ~sanitize:false (Clique.Sim.create 3) in
  let fields =
    try
      K.with_phase rt "gather" (fun () ->
          ignore (K.On_sim.exchange rt [| [ (2, [| 1; 2; 3 |]) ]; []; [] |]));
      None
    with Runtime.Mailbox.Bandwidth_exceeded { src; dst; words; width; phase }
      ->
      Some (src, dst, words, width, phase)
  in
  Alcotest.(check (option (pair (triple int int int) (pair int string))))
    "src, dst, words, width, phase all reported"
    (Some ((0, 2, 3), (2, "gather")))
    (Option.map (fun (s, d, w, wd, p) -> ((s, d, w), (wd, p))) fields);
  let printed =
    try
      ignore (Clique.Sim.exchange (Clique.Sim.create 2) [| [ (1, [| 1; 2; 3 |]) ]; [] |]);
      ""
    with e -> Printexc.to_string e
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "printer mentions %S" needle)
        true (contains printed needle))
    [ "src=0"; "dst=1"; "3 words"; "width 2" ]

(* Regression for the per-link accounting key (boxed (src,dst) tuple ->
   src*n+dst int): the budget must accumulate across separate messages on
   the same ordered pair, and the error must name that pair — on both
   delivery kernels. *)
let test_bandwidth_accumulates_per_pair () =
  List.iter
    (fun kernel ->
      let sim = Clique.Sim.create ~kernel 4 in
      (* Two messages 1->3 of 1+2 words: each fits width 2, the pair does
         not. The second message is where the budget trips. *)
      let outboxes = [| []; [ (3, [| 7 |]); (3, [| 8; 9 |]) ]; []; [] |] in
      let fields =
        try
          ignore (Clique.Sim.exchange sim outboxes);
          None
        with Runtime.Mailbox.Bandwidth_exceeded
            { src; dst; words; width; phase } ->
          Some ((src, dst, words), (width, phase))
      in
      Alcotest.(check (option (pair (triple int int int) (pair int string))))
        "pair budget accumulates and the error names (src,dst,phase,width)"
        (Some ((1, 3, 3), (2, "main")))
        fields;
      (* Distinct pairs never share a budget (the int key is injective). *)
      let sim = Clique.Sim.create ~kernel 4 in
      let inboxes =
        Clique.Sim.exchange sim
          [| [ (1, [| 1; 2 |]) ]; [ (2, [| 3; 4 |]) ]; []; [] |]
      in
      Alcotest.(check int) "distinct pairs deliver" 1
        (List.length inboxes.(2)))
    [ Clique.Sim.Arena; Clique.Sim.Legacy ]

let test_out_of_range_dst_names_context () =
  let rt = K.On_sim.create ~sanitize:false (Clique.Sim.create 3) in
  let check_msg what f =
    let msg =
      try
        ignore (f ());
        ""
      with Invalid_argument m -> m
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "%s names %S" what needle)
          true (contains msg needle))
      [ "out of range"; "phase=\"bad-dst\""; "width=2" ]
  in
  check_msg "exchange error" (fun () ->
      K.with_phase rt "bad-dst" (fun () ->
          K.On_sim.exchange rt [| [ (7, [| 1 |]) ]; []; [] |]));
  check_msg "route error" (fun () ->
      K.with_phase rt "bad-dst" (fun () ->
          K.On_sim.route rt [ (0, 9, [| 1 |]) ]))

(* -------------------------------------------- route batching arithmetic *)

let test_route_batch_boundary () =
  let n = 4 and width = 2 in
  (* Max per-node load exactly n·width = 8 words: one 16-round batch. *)
  let msgs load =
    List.init load (fun i -> (1 + (i mod (n - 1)), 0, [| i |]))
  in
  let sim = Clique.Sim.create n in
  ignore (Clique.Sim.route sim (msgs (n * width)));
  Alcotest.(check int) "load = capacity: 1 batch"
    Runtime.Cost.lenzen_routing_rounds (Clique.Sim.rounds sim);
  let sim2 = Clique.Sim.create n in
  ignore (Clique.Sim.route sim2 (msgs ((n * width) + 1)));
  Alcotest.(check int) "load = capacity + 1: 2 batches"
    (2 * Runtime.Cost.lenzen_routing_rounds)
    (Clique.Sim.rounds sim2);
  (* Same arithmetic with a non-default width. *)
  let sim3 = Clique.Sim.create n in
  ignore (Clique.Sim.route ~width:1 sim3 (msgs (n + 1)));
  Alcotest.(check int) "width 1 halves the capacity"
    (2 * Runtime.Cost.lenzen_routing_rounds)
    (Clique.Sim.rounds sim3)

(* --------------------------------------------------- ledger and observers *)

let test_runtime_ledger_and_phases () =
  let rt = K.clique 4 in
  K.with_phase rt "talk" (fun () ->
      ignore (K.On_sim.exchange rt [| [ (1, [| 5 |]) ]; []; []; [] |]));
  K.charge rt ~phase:"analysis" 7;
  Alcotest.(check int) "total" 8 (K.rounds rt);
  Alcotest.(check int) "talk" 1 (K.phase_rounds rt "talk");
  Alcotest.(check int) "analysis" 7 (K.phase_rounds rt "analysis");
  Alcotest.(check int) "words" 1 (K.words rt);
  Alcotest.(check (list (pair string int)))
    "sorted breakdown"
    [ ("analysis", 7); ("talk", 1) ]
    (K.phases rt);
  (* The ledger total always equals the transport's round counter. *)
  Alcotest.(check int) "transport agrees" (K.rounds rt)
    (Clique.Sim.rounds (K.On_sim.transport rt));
  Alcotest.(check bool) "negative charge rejected" true
    (try
       K.charge rt (-1);
       false
     with Invalid_argument _ -> true)

let test_runtime_on_round_hook () =
  let rt = K.clique 3 in
  let seen = ref [] in
  K.on_round rt (fun ~phase ~rounds ~words ->
      seen := (phase, rounds, words) :: !seen);
  K.with_phase rt "bcast" (fun () ->
      ignore (K.On_sim.broadcast rt [| [| 1 |]; [| 2 |]; [| 3 |] |]));
  K.charge rt ~phase:"post" 4;
  Alcotest.(check (list (triple string int int)))
    "observer saw both events"
    [ ("post", 4, 0); ("bcast", 1, 6) ]
    !seen

let test_runtime_trace_ring () =
  let rt = K.On_sim.create ~trace_capacity:2 (Clique.Sim.create 2) in
  K.charge rt ~phase:"a" 1;
  K.charge rt ~phase:"b" 2;
  K.charge rt ~phase:"c" 3;
  let tr = K.On_sim.trace rt in
  Alcotest.(check int) "all events counted" 3 (Runtime.Trace.recorded tr);
  Alcotest.(check (list string))
    "ring keeps the newest" [ "b"; "c" ]
    (List.map (fun e -> e.Runtime.Trace.phase) (Runtime.Trace.to_list tr));
  let report = K.report rt in
  Alcotest.(check bool) "report names the kernel" true
    (String.length report > 0
    && String.sub report 0 7 = "[clique")

(* ------------------------------------------------- cross-kernel programs *)

let test_bfs_parity_across_kernels () =
  let g = Gen.connected_gnp ~seed:21L 24 0.15 in
  let rt = K.clique (Graph.n g) in
  let d_clique = K.Sim_programs.bfs rt g 0 in
  let c = Clique.Congest.create g in
  let d_congest = Clique.Congest.bfs c 0 in
  Alcotest.(check (array int)) "distances agree" d_congest d_clique;
  Alcotest.(check (array int))
    "oracle agrees" (Traversal.bfs g 0) d_clique;
  Alcotest.(check int) "same rounds on both kernels"
    (Clique.Congest.rounds c) (K.rounds rt);
  Alcotest.(check int) "all rounds under the bfs phase" (K.rounds rt)
    (K.phase_rounds rt "bfs")

let test_bellman_ford_parity_across_kernels () =
  let g = Gen.weighted_gnp ~seed:22L 16 0.3 8 in
  let rt = K.clique (Graph.n g) in
  let d_clique = K.Sim_programs.bellman_ford rt g 0 in
  let c = Clique.Congest.create g in
  let d_congest = Clique.Congest.bellman_ford c 0 in
  Alcotest.(check int) "same rounds" (Clique.Congest.rounds c) (K.rounds rt);
  Array.iteri
    (fun v d ->
      if Float.abs (d -. d_congest.(v)) > 1e-9 then
        Alcotest.failf "distance mismatch at %d" v)
    d_clique

let test_boruvka_parity_across_kernels () =
  let g = Gen.complete ~w:1. 10 in
  (* Perturb weights deterministically so the MST is unique and nontrivial. *)
  let g =
    Graph.create 10
      (Array.to_list (Graph.edges g)
      |> List.mapi (fun i e ->
             { e with Graph.w = 1. +. float_of_int ((i * 37) mod 11) }))
  in
  let rt_sim = K.clique (Graph.n g) in
  let e1, w1, p1 = K.Sim_programs.boruvka rt_sim g in
  let rt_con = K.congest g in
  let e2, w2, p2 = K.Congest_programs.boruvka rt_con g in
  Alcotest.(check (list int)) "same edges" e1 e2;
  Alcotest.(check (float 1e-9)) "same weight" w1 w2;
  Alcotest.(check int) "same phases" p1 p2;
  Alcotest.(check int) "same rounds" (K.rounds rt_sim)
    (K.On_congest.rounds rt_con);
  Alcotest.(check (list int))
    "kruskal oracle"
    (List.sort compare (Clique.Boruvka.kruskal g))
    e1;
  Alcotest.(check int) "2 rounds per phase" (2 * p1) (K.rounds rt_sim);
  let r = Clique.Boruvka.minimum_spanning_tree g in
  Alcotest.(check (list int)) "wrapper agrees" e1 r.Clique.Boruvka.edges

let test_three_color_parity_across_kernels () =
  let k = 12 in
  let succ = Array.init k (fun i -> (i + 1) mod k) in
  let pred = Array.init k (fun i -> (i + k - 1) mod k) in
  let ids = Array.init k (fun i -> (i * 53) + 2) in
  let rt_sim = K.clique k in
  let c1, r1 = K.Sim_programs.three_color rt_sim ~ids ~succ ~pred in
  (* The ring's communication pattern follows cycle edges, so the same
     program runs on the CONGEST kernel over the cycle graph. *)
  let rt_con = K.congest (Gen.cycle k) in
  let c2, r2 = K.Congest_programs.three_color rt_con ~ids ~succ ~pred in
  Alcotest.(check (array int)) "same colors" c1 c2;
  Alcotest.(check int) "same rounds" r1 r2;
  Alcotest.(check bool) "proper" true (Coloring.is_proper c1 ~succ);
  Alcotest.(check int) "ledger charged under coloring" r1
    (K.phase_rounds rt_sim "coloring")

let suite =
  [
    Alcotest.test_case "sim exchange bandwidth" `Quick
      test_sim_exchange_bandwidth;
    Alcotest.test_case "sim broadcast bandwidth" `Quick
      test_sim_broadcast_bandwidth;
    Alcotest.test_case "sim route bandwidth" `Quick test_sim_route_bandwidth;
    Alcotest.test_case "congest exchange bandwidth+edges" `Quick
      test_congest_exchange_bandwidth_and_edges;
    Alcotest.test_case "congest route+broadcast" `Quick
      test_congest_route_and_broadcast;
    Alcotest.test_case "bandwidth error names (src,dst,phase,width)" `Quick
      test_bandwidth_error_names_context;
    Alcotest.test_case "bandwidth accumulates per pair (both kernels)" `Quick
      test_bandwidth_accumulates_per_pair;
    Alcotest.test_case "out-of-range dst names context" `Quick
      test_out_of_range_dst_names_context;
    Alcotest.test_case "route batch boundary" `Quick test_route_batch_boundary;
    Alcotest.test_case "ledger and phases" `Quick
      test_runtime_ledger_and_phases;
    Alcotest.test_case "on_round hook" `Quick test_runtime_on_round_hook;
    Alcotest.test_case "trace ring buffer" `Quick test_runtime_trace_ring;
    Alcotest.test_case "bfs parity across kernels" `Quick
      test_bfs_parity_across_kernels;
    Alcotest.test_case "bellman-ford parity across kernels" `Quick
      test_bellman_ford_parity_across_kernels;
    Alcotest.test_case "boruvka parity across kernels" `Quick
      test_boruvka_parity_across_kernels;
    Alcotest.test_case "three-color parity across kernels" `Quick
      test_three_color_parity_across_kernels;
  ]
