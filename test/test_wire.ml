(* The wire subsystem: framing round-trips, corruption rejection, the
   writer/reader codec, links over real descriptors, and the pure shard
   partitioning layer ([Runtime.Shard]) that the socket transport builds
   on. Everything here is single-process; the multi-process legs live in
   test_socket.ml and test_kernel_equiv.ml. *)

module Frame = Wire.Frame
module Link = Wire.Link
module Fnv = Wire.Fnv
module Shard = Runtime.Shard
module M = Runtime.Mailbox

let frame_fields (f : Frame.t) =
  (f.Frame.kind, f.Frame.src, f.Frame.dst, f.Frame.seq, f.Frame.epoch,
   Bytes.to_string f.Frame.payload)

(* ------------------------------------------------------------- framing *)

let test_frame_round_trip_exact () =
  let f =
    { Frame.kind = 3; src = -1; dst = 7; seq = 123456789; epoch = 5;
      payload = Bytes.of_string "some payload bytes" }
  in
  let b = Frame.encode f in
  Alcotest.(check int)
    "encoded length is header + payload"
    (Frame.header_bytes + 18) (Bytes.length b);
  let g = Frame.decode b in
  Alcotest.(check (pair (pair int int) (pair int string)))
    "fields survive" ((3, -1), (7, "some payload bytes"))
    ((g.Frame.kind, g.Frame.src), (g.Frame.dst, Bytes.to_string g.Frame.payload));
  Alcotest.(check int) "seq survives" 123456789 g.Frame.seq;
  Alcotest.(check int) "epoch survives" 5 g.Frame.epoch

let expect_malformed what f =
  Alcotest.(check bool) what true
    (match f () with
    | _ -> false
    | exception Frame.Malformed _ -> true)

(* Every byte of the magic, version, length, and checksum fields — and of
   the payload — is load-bearing: flipping it must raise Malformed. (The
   kind/src/dst/seq/epoch fields are not self-checked; the payload
   checksum is the integrity boundary.) *)
let test_frame_corruption_detected () =
  let f =
    { Frame.kind = 5; src = 2; dst = 0; seq = 42; epoch = 1;
      payload = Bytes.of_string "abcdefgh" }
  in
  let b = Frame.encode f in
  let checked =
    [ 0; 1; 2 ]
    @ List.init 12 (fun i -> 24 + i)
    @ List.init (Bytes.length b - Frame.header_bytes) (fun i ->
          Frame.header_bytes + i)
  in
  List.iter
    (fun pos ->
      let c = Bytes.copy b in
      Bytes.set c pos (Char.chr (Char.code (Bytes.get c pos) lxor 0x41));
      expect_malformed
        (Printf.sprintf "flip at byte %d detected" pos)
        (fun () -> Frame.decode c))
    checked

let test_frame_truncation_detected () =
  let f =
    { Frame.kind = 1; src = 0; dst = 1; seq = 7; epoch = 1;
      payload = Bytes.of_string "0123456789" }
  in
  let b = Frame.encode f in
  expect_malformed "truncated buffer" (fun () ->
      Frame.decode (Bytes.sub b 0 (Bytes.length b - 3)));
  expect_malformed "short header" (fun () ->
      Frame.decode_header (Bytes.sub b 0 8))

let test_reader_bounds () =
  let w = Frame.Writer.create () in
  Frame.Writer.int w 99;
  Frame.Writer.string w "tail";
  let b = Frame.Writer.contents w in
  let r = Frame.Reader.of_bytes b in
  Alcotest.(check int) "int back" 99 (Frame.Reader.int r);
  Alcotest.(check string) "string back" "tail" (Frame.Reader.string r);
  Alcotest.(check bool) "at end" true (Frame.Reader.at_end r);
  expect_malformed "reading past the end" (fun () -> Frame.Reader.int r)

let test_fnv_pinned () =
  (* The FNV-1a 64 basis and prime, and the classic single-byte vector:
     hash("a") = offset xor 0x61 times prime. *)
  Alcotest.(check int64) "offset basis" 0xcbf29ce484222325L Fnv.offset;
  Alcotest.(check int64) "prime" 0x100000001b3L Fnv.prime;
  Alcotest.(check int64) "fnv1a(\"a\")" 0xaf63dc4c8601ec8cL
    (Fnv.add_byte Fnv.offset (Char.code 'a'));
  Alcotest.(check bool) "string terminator splits"
    false
    (Fnv.add_string (Fnv.add_string Fnv.offset "ab") "c"
    = Fnv.add_string (Fnv.add_string Fnv.offset "a") "bc")

let qcheck_frame_tests =
  let open QCheck in
  [
    Test.make ~name:"frame encode/decode round-trips" ~count:200
      (quad (int_range 0 255) (int_range (-1) 61) small_nat
         (string_of_size (Gen.int_range 0 300)))
      (fun (kind, src, seq, payload) ->
        let f =
          { Frame.kind; src; dst = (src + 5) mod 62; seq;
            epoch = seq mod 97; payload = Bytes.of_string payload }
        in
        frame_fields (Frame.decode (Frame.encode f)) = frame_fields f);
    Test.make ~name:"writer/reader codec round-trips" ~count:200
      (list (pair int (string_of_size (Gen.int_range 0 40))))
      (fun items ->
        let w = Frame.Writer.create () in
        List.iter
          (fun (i, s) ->
            Frame.Writer.int w i;
            Frame.Writer.string w s)
          items;
        let r = Frame.Reader.of_bytes (Frame.Writer.contents w) in
        let back =
          List.map
            (fun _ ->
              (* explicit lets: tuple components evaluate right-to-left *)
              let i = Frame.Reader.int r in
              let s = Frame.Reader.string r in
              (i, s))
            items
        in
        back = items && Frame.Reader.at_end r);
  ]

(* --------------------------------------------------------------- links *)

let send_recv what a b =
  let f =
    { Frame.kind = 2; src = 0; dst = 1; seq = 11; epoch = 1;
      payload = Bytes.of_string "across the wire" }
  in
  Link.send a f;
  let g = Link.recv b in
  Alcotest.(check string) what "across the wire" (Bytes.to_string g.Frame.payload);
  Alcotest.(check int) "one frame sent" 1 (Link.frames_sent a);
  Alcotest.(check int) "one frame received" 1 (Link.frames_recv b);
  Alcotest.(check int) "bytes counted"
    (Frame.header_bytes + 15) (Link.bytes_sent a)

let test_link_socketpair () =
  let a, b = Link.pair ~peer:"unit" () in
  send_recv "unix pair payload" a b;
  Link.close a;
  Alcotest.(check bool) "EOF raises Closed" true
    (match Link.recv b with
    | _ -> false
    | exception Link.Closed _ -> true);
  Link.close b;
  Link.close b (* idempotent *)

let test_link_tcp () =
  let lsock = Link.listen "127.0.0.1:0" in
  let a, b = Link.tcp_pair ~peer:"tcp-unit" lsock in
  send_recv "tcp payload" a b;
  Link.close a;
  Link.close b;
  try Unix.close lsock with Unix.Unix_error _ -> ()

(* A bounded recv on a silent link raises Timeout at the deadline instead
   of blocking — the primitive every supervised wait builds on. *)
let test_link_recv_deadline () =
  let a, b = Link.pair ~peer:"deadline" () in
  let t0 = Unix.gettimeofday () in
  Alcotest.(check bool) "silent peer times out" true
    (match Link.recv ~deadline:(t0 +. 0.05) b with
    | _ -> false
    | exception Link.Timeout _ -> true);
  Alcotest.(check bool) "deadline respected" true
    (Unix.gettimeofday () -. t0 >= 0.05);
  (* a deadline in the future does not disturb a normal receive *)
  Link.send a
    { Frame.kind = 2; src = 0; dst = 1; seq = 1; epoch = 1;
      payload = Bytes.of_string "late but present" };
  let g = Link.recv ~deadline:(Unix.gettimeofday () +. 5.0) b in
  Alcotest.(check string) "frame still delivered" "late but present"
    (Bytes.to_string g.Frame.payload);
  Link.close a;
  Link.close b

(* ------------------------------------------------- shard partitioning *)

let owners_consistent ~shards ~n =
  let owner = Shard.owners ~shards ~n in
  for s = 0 to shards - 1 do
    let lo, hi = Shard.bounds ~shards ~n s in
    for v = lo to hi - 1 do
      Alcotest.(check int)
        (Printf.sprintf "owner of %d (k=%d, n=%d)" v shards n)
        s owner.(v)
    done
  done

let test_owners () =
  List.iter
    (fun (shards, n) -> owners_consistent ~shards ~n)
    [ (1, 5); (2, 8); (3, 10); (4, 4); (4, 23) ]

(* The edge cases the drain reassignment logic leans on: ranges are
   monotone and concatenate to [0, n) for every shard count, including
   n = 0 (all empty) and n < shards (exactly n singletons). *)
let test_bounds_edge_cases () =
  List.iter
    (fun (shards, n) ->
      let cursor = ref 0 in
      for s = 0 to shards - 1 do
        let lo, hi = Shard.bounds ~shards ~n s in
        Alcotest.(check int)
          (Printf.sprintf "contiguous at shard %d (k=%d, n=%d)" s shards n)
          !cursor lo;
        Alcotest.(check bool) "non-negative range" true (hi >= lo);
        cursor := hi
      done;
      Alcotest.(check int)
        (Printf.sprintf "ranges cover [0,n) (k=%d, n=%d)" shards n)
        n !cursor;
      let owner = Shard.owners ~shards ~n in
      Alcotest.(check int) "owners length" n (Array.length owner))
    [ (1, 0); (4, 0); (3, 2); (8, 3); (5, 5); (7, 100) ];
  (* n < shards: exactly n singleton ranges, the rest empty *)
  let shards = 8 and n = 3 in
  let singletons = ref 0 in
  for s = 0 to shards - 1 do
    let lo, hi = Shard.bounds ~shards ~n s in
    if hi > lo then begin
      Alcotest.(check int) "singleton range" 1 (hi - lo);
      incr singletons
    end
  done;
  Alcotest.(check int) "exactly n singletons" n !singletons;
  (* every owner is one of the singleton shards, in ascending order *)
  let owner = Shard.owners ~shards ~n in
  Array.iteri
    (fun v s ->
      let lo, hi = Shard.bounds ~shards ~n s in
      Alcotest.(check (pair int int))
        (Printf.sprintf "node %d sits in its owner's range" v)
        (v, v + 1) (lo, hi))
    owner;
  Alcotest.(check bool) "owners ascend" true
    (owner.(0) < owner.(1) && owner.(1) < owner.(2))

(* The epoch-versioned live partition behind the Drain policy. *)
let test_partition_drain () =
  let p = Shard.Partition.create ~shards:4 ~n:20 in
  Alcotest.(check int) "starts at epoch 1" 1 (Shard.Partition.epoch p);
  Alcotest.(check int) "all live" 4 (Shard.Partition.live p);
  Alcotest.(check (array int)) "owners match the static partition"
    (Shard.owners ~shards:4 ~n:20)
    (Shard.Partition.owners p);
  (* drain a middle shard: its range merges into the live predecessor *)
  let p1 = Shard.Partition.drain p 2 in
  Alcotest.(check int) "epoch bumped" 2 (Shard.Partition.epoch p1);
  Alcotest.(check int) "one fewer live" 3 (Shard.Partition.live p1);
  Alcotest.(check bool) "shard 2 dead" false (Shard.Partition.alive p1 2);
  let lo1, hi1 = Shard.Partition.bounds p1 1 in
  let _, hi2_old = Shard.Partition.bounds p 2 in
  Alcotest.(check (pair int int)) "predecessor absorbs the range"
    (fst (Shard.Partition.bounds p 1), hi2_old)
    (lo1, hi1);
  let d2lo, d2hi = Shard.Partition.bounds p1 2 in
  Alcotest.(check int) "drained range empty" 0 (d2hi - d2lo);
  (* live ranges still concatenate to [0, n) *)
  let covered =
    List.fold_left
      (fun acc s ->
        let lo, hi = Shard.Partition.bounds p1 s in
        acc + (hi - lo))
      0
      (Shard.Partition.live_list p1)
  in
  Alcotest.(check int) "live ranges cover every node" 20 covered;
  Array.iteri
    (fun v s ->
      Alcotest.(check bool)
        (Printf.sprintf "owner of %d is live" v)
        true
        (Shard.Partition.alive p1 s))
    (Shard.Partition.owners p1);
  (* draining shard 0 merges forward into the live successor *)
  let p2 = Shard.Partition.drain p1 0 in
  let lo, _ = Shard.Partition.bounds p2 1 in
  Alcotest.(check int) "successor absorbs a head drain" 0 lo;
  (* double drain and the last-survivor guard are rejected *)
  Alcotest.(check bool) "double drain rejected" true
    (match Shard.Partition.drain p2 0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let p3 = Shard.Partition.drain p2 3 in
  Alcotest.(check int) "one survivor left" 1 (Shard.Partition.live p3);
  Alcotest.(check (pair int int)) "survivor owns everything" (0, 20)
    (Shard.Partition.bounds p3 1);
  Alcotest.(check bool) "last survivor cannot drain" true
    (match Shard.Partition.drain p3 1 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  (* bump only moves the epoch *)
  let b = Shard.Partition.bump p3 in
  Alcotest.(check int) "bump increments epoch"
    (Shard.Partition.epoch p3 + 1)
    (Shard.Partition.epoch b);
  Alcotest.(check int) "bump preserves live count" 1 (Shard.Partition.live b)

(* n < shards leaves some shards empty from the start; draining an empty
   shard and draining around empties must keep the cover exact. *)
let test_partition_drain_empty_ranges () =
  let p = Shard.Partition.create ~shards:5 ~n:3 in
  (* with n=3 over 5 shards, shard 0 is empty (owners are a subset) *)
  let e0lo, e0hi = Shard.Partition.bounds p 0 in
  Alcotest.(check int) "shard 0 starts empty" 0 (e0hi - e0lo);
  let p1 = Shard.Partition.drain p 0 in
  (* empty shard drained: nothing to merge, cover unchanged *)
  Alcotest.(check (array int)) "owners unchanged by empty drain"
    (Shard.Partition.owners p) (Shard.Partition.owners p1);
  let p2 = Shard.Partition.drain p1 1 in
  let covered =
    List.fold_left
      (fun acc s ->
        let lo, hi = Shard.Partition.bounds p2 s in
        acc + (hi - lo))
      0
      (Shard.Partition.live_list p2)
  in
  Alcotest.(check int) "cover exact after singleton drain" 3 covered;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "every owner live" true
        (Shard.Partition.alive p2 s))
    (Shard.Partition.owners p2)

(* A deterministic mixed workload with cross-shard traffic, repeated
   pairs, self-messages, and empty outboxes. *)
let workload n =
  Array.init n (fun v ->
      if v mod 4 = 3 then []
      else
        [
          ((v + 1) mod n, [| v; v * 2 |]);
          ((v + (n / 2)) mod n, [| v |]);
          (v, [| 42 |]);
        ])

let test_split_exchange () =
  let n = 8 and shards = 2 and width = 4 in
  let owner = Shard.owners ~shards ~n in
  let split = Shard.split_exchange ~owner ~shards ~n ~width (workload n) in
  Alcotest.(check (option (pair int string))) "no range error" None
    split.Shard.range_error;
  (* gidx reproduces the src-major walk: concatenating the per-shard lists
     sorted together is exactly 0..messages-1. *)
  let all =
    Shard.merge_inbound (Array.to_list split.Shard.by_src_shard)
  in
  Alcotest.(check (list int)) "gidx is the global walk order"
    (List.init split.Shard.messages (fun i -> i))
    (List.map (fun (m : Shard.msg) -> m.Shard.gidx) all);
  (* every message sits in its source's shard, in gidx order *)
  Array.iteri
    (fun s msgs ->
      let last = ref (-1) in
      List.iter
        (fun (m : Shard.msg) ->
          Alcotest.(check int) "grouped by source shard" s owner.(m.Shard.src);
          Alcotest.(check bool) "ascending gidx" true (m.Shard.gidx > !last);
          last := m.Shard.gidx)
        msgs)
    split.Shard.by_src_shard;
  (* the expect matrix is exactly the nonzero cross-shard traffic *)
  let traffic = Array.make_matrix shards shards false in
  List.iter
    (fun (m : Shard.msg) ->
      let s = owner.(m.Shard.src) and d = owner.(m.Shard.dst) in
      if s <> d then traffic.(d).(s) <- true)
    all;
  for d = 0 to shards - 1 do
    for s = 0 to shards - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "expect.(%d).(%d)" d s)
        traffic.(d).(s) split.Shard.expect.(d).(s)
    done
  done;
  let crossings =
    List.length
      (List.filter
         (fun (m : Shard.msg) -> owner.(m.Shard.src) <> owner.(m.Shard.dst))
         all)
  in
  Alcotest.(check int) "crossings" crossings split.Shard.crossings

let test_split_errors_match_mailbox () =
  let n = 8 and shards = 3 and width = 2 in
  let owner = Shard.owners ~shards ~n in
  (* out-of-range destination: the recorded message must be byte-identical
     to what Mailbox.deliver raises. *)
  let bad = Array.make n [] in
  bad.(2) <- [ (1, [| 5 |]); (n + 3, [| 6 |]) ];
  let expected =
    match M.deliver ~n ~width bad with
    | _ -> Alcotest.fail "mailbox must reject the range"
    | exception Invalid_argument m -> m
  in
  (match
     (Shard.split_exchange ~owner ~shards ~n ~width bad).Shard.range_error
   with
  | Some (_, m) -> Alcotest.(check string) "range message identical" expected m
  | None -> Alcotest.fail "split must record the range error");
  (* outbox length mismatch raises the same Invalid_argument *)
  let short = Array.make (n - 1) [] in
  let expected =
    match M.deliver ~n ~width short with
    | _ -> Alcotest.fail "mailbox must reject the length"
    | exception Invalid_argument m -> m
  in
  Alcotest.(check string) "length message identical" expected
    (match Shard.split_exchange ~owner ~shards ~n ~width short with
    | _ -> "no exception"
    | exception Invalid_argument m -> m)

let test_first_overflow () =
  let mk gidx src dst pay = { Shard.gidx; src; dst; pay } in
  let stream =
    [ mk 0 1 3 [| 7 |]; mk 1 1 3 [| 8; 9 |]; mk 2 4 3 [| 1; 2; 3 |] ]
  in
  (match Shard.first_overflow ~n:8 ~width:2 stream with
  | Some o ->
    Alcotest.(check (pair (pair int int) (pair int int)))
      "pair (1,3) trips at gidx 1 with 3 words"
      ((1, 1), (3, 3))
      ((o.Shard.gidx, o.Shard.src), (o.Shard.dst, o.Shard.words))
  | None -> Alcotest.fail "overflow expected");
  Alcotest.(check bool) "within width is clean" true
    (Shard.first_overflow ~n:8 ~width:4 stream = None)

(* The full pure pipeline — split, per-shard partition + merge, local
   delivery, stitched slices — equals a single-process delivery, for every
   shard count. No sockets involved: this is the order argument itself. *)
let test_pipeline_matches_mailbox () =
  let inboxes_t = Alcotest.(array (list (pair int (array int)))) in
  let n = 12 and width = 4 in
  let outboxes = workload n in
  let reference, _ = M.deliver ~n ~width outboxes in
  List.iter
    (fun shards ->
      let owner = Shard.owners ~shards ~n in
      let split = Shard.split_exchange ~owner ~shards ~n ~width outboxes in
      let stitched = Array.make n [] in
      for d = 0 to shards - 1 do
        (* what worker d receives: its slice of every source shard's
           partition, merged back into gidx order *)
        let inbound =
          Shard.merge_inbound
            (List.map
               (fun msgs ->
                 (Shard.partition_by_dst ~owner ~shards msgs).(d))
               (Array.to_list split.Shard.by_src_shard))
        in
        let lo, hi = Shard.bounds ~shards ~n d in
        match
          Shard.deliver_local
            ~arena:(Runtime.Arena.create ~n ())
            ~n ~width ~lo ~hi inbound
        with
        | Shard.Overflow _ -> Alcotest.fail "no overflow in this workload"
        | Shard.Inboxes slices ->
          Array.iteri (fun i box -> stitched.(lo + i) <- box) slices
      done;
      Alcotest.check inboxes_t
        (Printf.sprintf "stitched slices == mailbox (shards=%d)" shards)
        reference stitched)
    [ 1; 2; 3; 4 ]

let suite =
  [
    Alcotest.test_case "frame round-trip (exact)" `Quick
      test_frame_round_trip_exact;
    Alcotest.test_case "frame corruption detected" `Quick
      test_frame_corruption_detected;
    Alcotest.test_case "frame truncation detected" `Quick
      test_frame_truncation_detected;
    Alcotest.test_case "reader bounds" `Quick test_reader_bounds;
    Alcotest.test_case "fnv pinned vectors" `Quick test_fnv_pinned;
    Alcotest.test_case "link over socketpair" `Quick test_link_socketpair;
    Alcotest.test_case "link over tcp" `Quick test_link_tcp;
    Alcotest.test_case "link recv deadline" `Quick test_link_recv_deadline;
    Alcotest.test_case "shard owners/bounds" `Quick test_owners;
    Alcotest.test_case "bounds edge cases" `Quick test_bounds_edge_cases;
    Alcotest.test_case "partition drain" `Quick test_partition_drain;
    Alcotest.test_case "partition drain (empty ranges)" `Quick
      test_partition_drain_empty_ranges;
    Alcotest.test_case "split_exchange structure" `Quick test_split_exchange;
    Alcotest.test_case "split errors match mailbox" `Quick
      test_split_errors_match_mailbox;
    Alcotest.test_case "first overflow" `Quick test_first_overflow;
    Alcotest.test_case "pure pipeline matches mailbox" `Quick
      test_pipeline_matches_mailbox;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_frame_tests
