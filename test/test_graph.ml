(* Tests for the graph substrate: structures, generators, traversal,
   matching, Cole–Vishkin coloring. *)

module Graph_gen = Gen

let test_graph_create_validation () =
  Alcotest.(check bool)
    "self-loop rejected" true
    (try
       ignore (Graph.create 3 [ { Graph.u = 1; v = 1; w = 1. } ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "bad weight rejected" true
    (try
       ignore (Graph.create 3 [ { Graph.u = 0; v = 1; w = 0. } ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "out of range rejected" true
    (try
       ignore (Graph.create 3 [ { Graph.u = 0; v = 3; w = 1. } ]);
       false
     with Invalid_argument _ -> true)

let test_graph_degrees () =
  let g = Graph_gen.star 5 in
  Alcotest.(check int) "hub degree" 4 (Graph.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Graph.degree g 1);
  Alcotest.(check (float 1e-12)) "weighted hub" 4. (Graph.weighted_degree g 0)

let test_graph_multigraph () =
  let g =
    Graph.create 2
      [ { Graph.u = 0; v = 1; w = 1. }; { Graph.u = 1; v = 0; w = 2. } ]
  in
  Alcotest.(check int) "two parallel edges" 2 (Graph.m g);
  Alcotest.(check (float 1e-12)) "weighted degree sums" 3.
    (Graph.weighted_degree g 0);
  let simple = Graph.reweight_simple g in
  Alcotest.(check int) "collapsed" 1 (Graph.m simple);
  Alcotest.(check (float 1e-12)) "weights summed" 3.
    (Graph.edge simple 0).Graph.w

let test_laplacian_quadratic_form () =
  let g = Graph_gen.path 3 in
  (* x = (0, 1, 3): x'Lx = (0-1)² + (1-3)² = 5 *)
  Alcotest.(check (float 1e-12)) "quadratic form" 5.
    (Graph.quadratic_form g [| 0.; 1.; 3. |]);
  let lx = Graph.apply_laplacian g [| 0.; 1.; 3. |] in
  let expect = Linalg.Csr.mul_vec (Graph.laplacian g) [| 0.; 1.; 3. |] in
  Alcotest.(check bool) "apply matches csr" true (Linalg.Vec.equal lx expect)

let test_induced () =
  let g = Graph_gen.cycle 6 in
  let sub, map = Graph.induced g [| 0; 1; 2 |] in
  Alcotest.(check int) "sub vertices" 3 (Graph.n sub);
  Alcotest.(check int) "sub edges" 2 (Graph.m sub);
  Alcotest.(check int) "map" 2 map.(2)

let test_connectivity () =
  Alcotest.(check bool) "path connected" true
    (Graph.is_connected (Graph_gen.path 10));
  let disconnected =
    Graph.create 4 [ { Graph.u = 0; v = 1; w = 1. } ]
  in
  Alcotest.(check bool) "disconnected" false (Graph.is_connected disconnected);
  let _, k = Traversal.components disconnected in
  Alcotest.(check int) "three components" 3 k

let test_bfs () =
  let g = Graph_gen.grid 3 3 in
  let dist = Traversal.bfs g 0 in
  Alcotest.(check int) "corner to corner" 4 dist.(8);
  Alcotest.(check int) "adjacent" 1 dist.(1)

let test_spanning_forest () =
  let g = Graph_gen.connected_gnp ~seed:5L 30 0.2 in
  let forest = Traversal.spanning_forest g in
  Alcotest.(check int) "n-1 edges" 29 (List.length forest)

let test_unionfind () =
  let uf = Unionfind.create 5 in
  Alcotest.(check bool) "union" true (Unionfind.union uf 0 1);
  Alcotest.(check bool) "redundant union" false (Unionfind.union uf 1 0);
  Alcotest.(check bool) "same" true (Unionfind.same uf 0 1);
  Alcotest.(check int) "classes" 4 (Unionfind.count uf)

(* ---------------------------------------------------------------- Digraph *)

let test_digraph_basic () =
  let g =
    Digraph.create 3
      [
        { Digraph.src = 0; dst = 1; cap = 2; cost = 5 };
        { Digraph.src = 1; dst = 2; cap = 1; cost = 3 };
      ]
  in
  Alcotest.(check int) "out degree" 1 (Digraph.out_degree g 0);
  Alcotest.(check int) "in degree" 1 (Digraph.in_degree g 2);
  Alcotest.(check int) "max capacity" 2 (Digraph.max_capacity g);
  Alcotest.(check int) "max cost" 5 (Digraph.max_cost g);
  Alcotest.(check bool) "not unit" false (Digraph.is_unit_capacity g);
  let r = Digraph.reverse g in
  Alcotest.(check int) "reverse out" 1 (Digraph.out_degree r 2)

let test_digraph_underlying () =
  let g = Graph_gen.random_network ~seed:2L 10 20 5 in
  let u = Digraph.underlying g in
  Alcotest.(check int) "same edge count" (Digraph.m g) (Graph.m u)

(* ------------------------------------------------------------- Generators *)

let test_generators_sizes () =
  Alcotest.(check int) "path edges" 9 (Graph.m (Graph_gen.path 10));
  Alcotest.(check int) "cycle edges" 10 (Graph.m (Graph_gen.cycle 10));
  Alcotest.(check int) "complete edges" 45 (Graph.m (Graph_gen.complete 10));
  Alcotest.(check int) "grid vertices" 12 (Graph.n (Graph_gen.grid 3 4));
  Alcotest.(check int) "hypercube edges" 32
    (Graph.m (Graph_gen.hypercube 4));
  Alcotest.(check int) "bipartite edges" 12
    (Graph.m (Graph_gen.complete_bipartite 3 4))

let test_gnp_deterministic () =
  let a = Graph_gen.gnp ~seed:9L 20 0.3 in
  let b = Graph_gen.gnp ~seed:9L 20 0.3 in
  Alcotest.(check bool) "same seed same graph" true (Graph.equal_structure a b);
  let c = Graph_gen.gnp ~seed:10L 20 0.3 in
  Alcotest.(check bool) "different seed differs" false
    (Graph.equal_structure a c)

let test_even_gnp_all_even () =
  List.iter
    (fun seed ->
      let g = Graph_gen.even_gnp ~seed:(Int64.of_int seed) 31 0.2 in
      for v = 0 to Graph.n g - 1 do
        if Graph.degree g v land 1 = 1 then
          Alcotest.failf "odd degree at %d (seed %d)" v seed
      done)
    [ 1; 2; 3; 4; 5 ]

let test_cycle_union_even () =
  let g = Graph_gen.cycle_union ~seed:4L 20 5 in
  for v = 0 to 19 do
    Alcotest.(check bool)
      (Printf.sprintf "even degree at %d" v)
      true
      (Graph.degree g v land 1 = 0)
  done

let test_barbell_low_conductance () =
  let g = Graph_gen.barbell 8 in
  (* The single bridge edge gives conductance ≤ 1/vol(K8) *)
  let inside = Array.init 16 (fun v -> v < 8) in
  let phi = Expander.Conductance.of_cut g inside in
  Alcotest.(check bool) "bridge cut is sparse" true (phi < 0.02)

(* ------------------------------------------------------------ Cole–Vishkin *)

let ring_arrays k =
  let succ = Array.init k (fun i -> (i + 1) mod k) in
  let pred = Array.init k (fun i -> (i + k - 1) mod k) in
  (succ, pred)

(* The coloring chain is a node program now; run it on a fresh clique
   runtime (the communication schedule is exercised by test_runtime). *)
let three_color ~ids ~succ ~pred =
  let rt = Clique.Kernel.clique (Array.length ids) in
  Clique.Kernel.Sim_programs.three_color rt ~ids ~succ ~pred

let test_cv_three_coloring_ring () =
  List.iter
    (fun k ->
      let succ, pred = ring_arrays k in
      let ids = Array.init k (fun i -> (i * 7919) mod 104729) in
      (* ensure distinct *)
      let seen = Hashtbl.create k in
      Array.iteri
        (fun i id ->
          if Hashtbl.mem seen id then ids.(i) <- 104729 + i;
          Hashtbl.replace seen ids.(i) ())
        ids;
      let colors, rounds = three_color ~ids ~succ ~pred in
      Alcotest.(check bool)
        (Printf.sprintf "proper on ring %d" k)
        true
        (Coloring.is_proper colors ~succ);
      Array.iter
        (fun c ->
          if c < 0 || c > 2 then Alcotest.failf "color %d out of range" c)
        colors;
      (* O(log* n) + constant rounds; generous sanity bound. *)
      Alcotest.(check bool)
        (Printf.sprintf "rounds small on ring %d" k)
        true (rounds <= 12))
    [ 3; 4; 5; 16; 100; 1000 ]

let test_cv_two_cycle () =
  let succ = [| 1; 0 |] and pred = [| 1; 0 |] in
  let colors, _ = three_color ~ids:[| 17; 4 |] ~succ ~pred in
  Alcotest.(check bool) "distinct" true (colors.(0) <> colors.(1))

let test_cv_matching_maximal_on_ring () =
  List.iter
    (fun k ->
      let succ, pred = ring_arrays k in
      let ids = Array.init k (fun i -> i) in
      let colors, _ = three_color ~ids ~succ ~pred in
      let matched = Coloring.maximal_matching_on_cycles ~colors ~succ ~pred in
      (* No two adjacent matched edges: matched.(i) implies not
         matched.(succ i). *)
      Array.iteri
        (fun i m ->
          if m && matched.(succ.(i)) then
            Alcotest.failf "adjacent matched edges at %d" i)
        matched;
      (* Maximality: an unmatched edge must touch a matched one. *)
      Array.iteri
        (fun i m ->
          if not m then begin
            let touches =
              matched.(pred.(i)) || matched.(succ.(i)) || matched.(i)
            in
            if not touches then Alcotest.failf "matching not maximal at %d" i
          end)
        matched;
      (* At least a constant fraction matched on long rings. *)
      let count = Array.fold_left (fun a m -> if m then a + 1 else a) 0 matched in
      if k >= 16 then
        Alcotest.(check bool)
          (Printf.sprintf "fraction on ring %d" k)
          true
          (float_of_int count >= float_of_int k /. 4.))
    [ 4; 5; 16; 100; 333 ]

let test_log_star () =
  Alcotest.(check int) "log* 2" 1 (Coloring.log_star 2);
  Alcotest.(check int) "log* 16" 3 (Coloring.log_star 16);
  Alcotest.(check int) "log* 65536" 4 (Coloring.log_star 65536);
  Alcotest.(check bool) "log* huge small" true (Coloring.log_star max_int <= 5)

let test_greedy_matching () =
  let g = Graph_gen.connected_gnp ~seed:12L 40 0.1 in
  let m = Matching.maximal g in
  Alcotest.(check bool) "is matching" true (Matching.is_matching g m);
  Alcotest.(check bool) "is maximal" true (Matching.is_maximal g m)

(* --------------------------------------------------------------- QCheck *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"laplacian row sums vanish" ~count:60 small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 1)) 15 0.25
        in
        let y = Graph.apply_laplacian g (Linalg.Vec.constant 15 1.) in
        Linalg.Vec.norm2 y < 1e-9);
    Test.make ~name:"even_gnp always Eulerian-degree" ~count:40 small_nat
      (fun seed ->
        let g = Graph_gen.even_gnp ~seed:(Int64.of_int (seed + 7)) 17 0.3 in
        let ok = ref true in
        for v = 0 to 16 do
          if Graph.degree g v land 1 = 1 then ok := false
        done;
        !ok);
    Test.make ~name:"greedy matching maximal" ~count:40 small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 31)) 20 0.2
        in
        let m = Matching.maximal g in
        Matching.is_matching g m && Matching.is_maximal g m);
    Test.make ~name:"cv coloring proper on random rings" ~count:40
      (int_range 3 500)
      (fun k ->
        let succ = Array.init k (fun i -> (i + 1) mod k) in
        let pred = Array.init k (fun i -> (i + k - 1) mod k) in
        let ids = Array.init k (fun i -> (i * 31) + 7) in
        let colors, _ = three_color ~ids ~succ ~pred in
        Coloring.is_proper colors ~succ
        && Array.for_all (fun c -> c >= 0 && c <= 2) colors);
  ]

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_graph_create_validation;
    Alcotest.test_case "degrees" `Quick test_graph_degrees;
    Alcotest.test_case "multigraph" `Quick test_graph_multigraph;
    Alcotest.test_case "laplacian quadratic form" `Quick
      test_laplacian_quadratic_form;
    Alcotest.test_case "induced subgraph" `Quick test_induced;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "bfs distances" `Quick test_bfs;
    Alcotest.test_case "spanning forest" `Quick test_spanning_forest;
    Alcotest.test_case "union-find" `Quick test_unionfind;
    Alcotest.test_case "digraph basics" `Quick test_digraph_basic;
    Alcotest.test_case "digraph underlying" `Quick test_digraph_underlying;
    Alcotest.test_case "generator sizes" `Quick test_generators_sizes;
    Alcotest.test_case "gnp deterministic" `Quick test_gnp_deterministic;
    Alcotest.test_case "even_gnp parity" `Quick test_even_gnp_all_even;
    Alcotest.test_case "cycle_union parity" `Quick test_cycle_union_even;
    Alcotest.test_case "barbell conductance" `Quick
      test_barbell_low_conductance;
    Alcotest.test_case "cv 3-coloring rings" `Quick
      test_cv_three_coloring_ring;
    Alcotest.test_case "cv 2-cycle" `Quick test_cv_two_cycle;
    Alcotest.test_case "cv matching maximal" `Quick
      test_cv_matching_maximal_on_ring;
    Alcotest.test_case "log star" `Quick test_log_star;
    Alcotest.test_case "greedy matching" `Quick test_greedy_matching;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* --------------------------------------------------- additional coverage *)

let test_union_and_scale () =
  let a = Graph_gen.path 4 in
  let b = Graph_gen.cycle 4 in
  let u = Graph.union a b in
  Alcotest.(check int) "edge union" (Graph.m a + Graph.m b) (Graph.m u);
  let s = Graph.scale_weights 3. a in
  Alcotest.(check (float 1e-12)) "scaled total" (3. *. Graph.total_weight a)
    (Graph.total_weight s)

let test_digraph_reverse_involution () =
  let g = Graph_gen.random_network ~seed:81L 12 25 5 in
  let rr = Digraph.reverse (Digraph.reverse g) in
  Alcotest.(check int) "same arcs" (Digraph.m g) (Digraph.m rr);
  Array.iteri
    (fun i a ->
      let b = Digraph.arc rr i in
      if a <> b then Alcotest.failf "arc %d changed" i)
    (Digraph.arcs g)

let test_layered_network_structure () =
  let g = Graph_gen.layered_network ~seed:82L 3 4 6 in
  let n = Digraph.n g in
  Alcotest.(check int) "vertex count" (3 * 4 + 2) n;
  (* Source reaches sink. *)
  let dist, _ = Traversal.bfs_digraph g 0 in
  Alcotest.(check bool) "sink reachable" true (dist.(n - 1) > 0)

let test_unit_bipartite_structure () =
  let g = Graph_gen.unit_bipartite ~seed:83L 5 0.4 in
  Alcotest.(check bool) "unit caps" true (Digraph.is_unit_capacity g);
  (* Every left vertex has at least one job arc (generator guarantees). *)
  for i = 1 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "left %d has options" i)
      true
      (Digraph.out_degree g i >= 1)
  done

let test_random_mcf_demand_feasible () =
  List.iter
    (fun seed ->
      let g, sigma = Graph_gen.random_mcf ~seed:(Int64.of_int seed) 10 25 8 in
      Alcotest.(check int) "sums to zero" 0 (Array.fold_left ( + ) 0 sigma);
      Alcotest.(check bool) "feasible by construction" true
        (Mcf_ssp.solve g ~sigma <> None))
    [ 11; 12; 13; 14 ]

let test_weighted_gnp_bounds () =
  let g = Graph_gen.weighted_gnp ~seed:84L 20 0.3 7 in
  Array.iter
    (fun e ->
      if e.Graph.w < 1. || e.Graph.w > 7. then
        Alcotest.failf "weight %g out of [1,7]" e.Graph.w)
    (Graph.edges g)

let test_circulant_regularity () =
  let g = Graph_gen.circulant 12 [ 1; 3 ] in
  for v = 0 to 11 do
    Alcotest.(check int) "4-regular" 4 (Graph.degree g v)
  done

let test_bfs_digraph_residual_mask () =
  let g =
    Digraph.create 3
      [
        { Digraph.src = 0; dst = 1; cap = 1; cost = 0 };
        { Digraph.src = 1; dst = 2; cap = 1; cost = 0 };
      ]
  in
  let dist, _ = Traversal.bfs_digraph g ~residual_cap:(fun id -> if id = 1 then 0 else 1) 0 in
  Alcotest.(check int) "blocked" (-1) dist.(2)

let test_sub_edges () =
  let g = Graph_gen.cycle 5 in
  let h = Graph.sub_edges g [ 0; 2 ] in
  Alcotest.(check int) "two edges kept" 2 (Graph.m h);
  Alcotest.(check int) "vertex set unchanged" 5 (Graph.n h)

let more_graph_qcheck =
  let open QCheck in
  [
    Test.make ~name:"handshake: sum of degrees = 2m" ~count:60 small_nat
      (fun seed ->
        let g = Graph_gen.gnp ~seed:(Int64.of_int (seed + 500)) 15 0.4 in
        let sum = ref 0 in
        for v = 0 to 14 do
          sum := !sum + Graph.degree g v
        done;
        !sum = 2 * Graph.m g);
    Test.make ~name:"bfs distances are metric-ish" ~count:40 small_nat
      (fun seed ->
        let g =
          Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 501)) 12 0.3
        in
        let d0 = Traversal.bfs g 0 in
        (* triangle inequality through any edge *)
        Array.for_all
          (fun e -> abs (d0.(e.Graph.u) - d0.(e.Graph.v)) <= 1)
          (Graph.edges g));
    Test.make ~name:"components partition vertices" ~count:40 small_nat
      (fun seed ->
        let g = Graph_gen.gnp ~seed:(Int64.of_int (seed + 502)) 14 0.15 in
        let members = Traversal.component_members g in
        List.fold_left (fun a c -> a + Array.length c) 0 members = 14);
    Test.make ~name:"induced keeps only internal edges" ~count:40 small_nat
      (fun seed ->
        let g = Graph_gen.gnp ~seed:(Int64.of_int (seed + 503)) 12 0.4 in
        let vs = [| 0; 2; 4; 6 |] in
        let sub, _ = Graph.induced g vs in
        Graph.n sub = 4
        && Array.for_all
             (fun e -> e.Graph.u < 4 && e.Graph.v < 4)
             (Graph.edges sub));
  ]

let suite =
  suite
  @ [
      Alcotest.test_case "union and scale" `Quick test_union_and_scale;
      Alcotest.test_case "digraph reverse involution" `Quick
        test_digraph_reverse_involution;
      Alcotest.test_case "layered network structure" `Quick
        test_layered_network_structure;
      Alcotest.test_case "unit bipartite structure" `Quick
        test_unit_bipartite_structure;
      Alcotest.test_case "random mcf feasible" `Quick
        test_random_mcf_demand_feasible;
      Alcotest.test_case "weighted gnp bounds" `Quick test_weighted_gnp_bounds;
      Alcotest.test_case "circulant regular" `Quick test_circulant_regularity;
      Alcotest.test_case "bfs digraph residual mask" `Quick
        test_bfs_digraph_residual_mask;
      Alcotest.test_case "sub edges" `Quick test_sub_edges;
    ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) more_graph_qcheck
