(* Tests for the cc_lint model-compliance analyzer: every rule L1-L6 is
   planted in an in-memory source string and must be detected with the
   correct rule id and line number; suppression markers, comment/string
   immunity, and path scoping are exercised alongside. *)

module Lint = Analysis.Lint
module Rule = Analysis.Rule
module Scan = Analysis.Scan

let rule_t = Alcotest.testable
    (fun fmt id -> Format.pp_print_string fmt (Rule.to_string id))
    (fun a b -> a = b)

let check_findings what expected findings =
  Alcotest.(check (list (pair rule_t int)))
    what expected
    (List.map (fun f -> (f.Lint.rule, f.Lint.line)) findings)

let scan ~file lines = Lint.scan_source ~file (String.concat "\n" lines)

(* ------------------------------------------------------ planted L1..L5 *)

let test_l1_entropy () =
  let findings =
    scan ~file:"lib/sparsify/fake.ml"
      [
        "let deterministic = 1";
        "";
        "let bad () = Random.int 10";
        "let sanctioned (p : Prng.t) = Prng.int p 10";
      ]
  in
  check_findings "Random. flagged at line 3" [ (Rule.L1, 3) ] findings;
  Alcotest.(check bool) "message names Graph.Prng" true
    (String.length (List.hd findings).Lint.message > 0
    && String.sub (Analysis.Report.to_string (List.hd findings)) 0
         (String.length "lib/sparsify/fake.ml:3 L1")
       = "lib/sparsify/fake.ml:3 L1")

let test_l1_scoped_to_charged_layers () =
  (* The graph generators are workload builders, not charged algorithms:
     Random there is out of scope (they use the seeded Prng anyway). *)
  check_findings "Random. allowed outside charged layers" []
    (scan ~file:"lib/graph/fake_gen.ml" [ "let x = Random.int 3" ]);
  check_findings "bin is not a charged layer" []
    (scan ~file:"bin/fake_cli.ml" [ "let x = Random.int 3" ])

let test_l2_wallclock () =
  check_findings "Unix. and Sys.time flagged with lines"
    [ (Rule.L2, 1); (Rule.L2, 4) ]
    (scan ~file:"lib/flow/fake.ml"
       [
         "let t0 = Unix.gettimeofday ()";
         "let fine = Sys.word_size";
         "let timer = \"Sys.time in a string is data, not a call\"";
         "let t1 = Sys.time ()";
       ])

let test_l3_transport_bypass () =
  let src =
    [
      "let f sim = Sim.exchange sim boxes";
      "let g c = Clique.Congest.broadcast c values";
      "let ok rt = Runtime_instance.exchange rt boxes";
      "let also_ok = Sim.create 4";
    ]
  in
  check_findings "bypass flagged in a charged layer"
    [ (Rule.L3, 1); (Rule.L3, 2) ]
    (scan ~file:"lib/euler/fake.ml" src);
  check_findings "lib/runtime is privileged" []
    (scan ~file:"lib/runtime/fake.ml" src);
  check_findings "lib/clique is privileged" []
    (scan ~file:"lib/clique/fake.ml" src)

let test_l4_obj_magic () =
  check_findings "Obj.magic flagged everywhere"
    [ (Rule.L4, 2) ]
    (scan ~file:"lib/linalg/fake.ml"
       [ "let a = 1"; "let b : int = Obj.magic \"boom\"" ])

let test_l5_catch_all () =
  check_findings "catch-all handler flagged"
    [ (Rule.L5, 1) ]
    (scan ~file:"bin/fake.ml"
       [
         "let x = try dangerous () with _ -> 0";
         "let y = match v with _ -> 0";
         "let z = try f () with Not_found -> 1";
       ])

let test_l7_recovery_in_charged_layer () =
  let src =
    [
      "let swallowed = try f () with Recover.Fault_detected _ -> fallback";
      "let retried rt = Recover.run ~retries:3 ~check rt f";
      "let fine = Check.eulerian g bits";
    ]
  in
  check_findings "Fault_detected and Recover.run flagged in charged layers"
    [ (Rule.L7, 1); (Rule.L7, 2) ]
    (scan ~file:"lib/laplacian/fake.ml" src);
  check_findings "the driver layers may recover" []
    (scan ~file:"lib/fault/fake.ml" src);
  check_findings "tests may recover" [] (scan ~file:"test/fake.ml" src);
  check_findings "suppressible like every rule" []
    (scan ~file:"lib/euler/fake.ml"
       [ "let x = Recover.run rt f (* cc_lint: allow L7 *)" ])

let test_l13_shard_down_outside_supervisor () =
  let src =
    [
      "let shrug rt = try f rt with Runtime.Shard.Shard_down _ -> fallback";
      "let reraise rt = raise (Shard.Shard_down { shard; round; during })";
      "let fine rt = f rt";
    ]
  in
  (* any lib layer outside the supervisor: both the catch and the raise
     are flagged — only the transport may even construct the exception *)
  check_findings "Shard_down flagged in charged layers"
    [ (Rule.L13, 1); (Rule.L13, 2) ]
    (scan ~file:"lib/laplacian/fake.ml" src);
  check_findings "flagged in uncharged lib layers too"
    [ (Rule.L13, 1); (Rule.L13, 2) ]
    (scan ~file:"lib/linalg/fake.ml" src);
  (* the supervisor layer and the definition site are privileged *)
  check_findings "the socket coordinator may supervise" []
    (scan ~file:"lib/clique/socket.ml" src);
  check_findings "the fault drivers may supervise" []
    (scan ~file:"lib/fault/fake.ml" src);
  check_findings "the definition site is exempt" []
    (scan ~file:"lib/runtime/shard.ml" src);
  (* but the rest of lib/clique and lib/runtime is not *)
  check_findings "sim.ml is not the supervisor"
    [ (Rule.L13, 1); (Rule.L13, 2) ]
    (scan ~file:"lib/clique/sim.ml" src);
  (* harness trees assert on Shard_down freely *)
  check_findings "tests are exempt" [] (scan ~file:"test/fake.ml" src);
  check_findings "bench is exempt" [] (scan ~file:"bench/fake.ml" src);
  check_findings "bin is exempt" [] (scan ~file:"bin/fake.ml" src);
  check_findings "suppressible like every rule" []
    (scan ~file:"lib/euler/fake.ml"
       [ "let x = try f () with Shard.Shard_down _ -> g () (* cc_lint: \
          allow L13 *)" ])

(* ------------------------------------------------------------------ L6 *)

let test_l6_missing_mli () =
  let findings =
    Lint.missing_mlis
      [
        "lib/foo/a.ml";
        "lib/foo/a.mli";
        "lib/foo/b.ml";
        "bin/cli.ml";
        "test/test_x.ml";
      ]
  in
  check_findings "only the lib module without .mli" [ (Rule.L6, 1) ] findings;
  Alcotest.(check string) "finding names the .ml file" "lib/foo/b.ml"
    (List.hd findings).Lint.file

(* ------------------------------------------- suppression and immunity *)

let test_suppression () =
  check_findings "allow marker suppresses exactly its rule" []
    (scan ~file:"lib/sparsify/fake.ml"
       [ "let x = Random.int 10 (* cc_lint: allow L1 *)" ]);
  check_findings "marker for another rule does not suppress"
    [ (Rule.L1, 1) ]
    (scan ~file:"lib/sparsify/fake.ml"
       [ "let x = Random.int 10 (* cc_lint: allow L2 *)" ]);
  check_findings "one marker can allow several rules" []
    (scan ~file:"lib/sparsify/fake.ml"
       [ "let x = try Random.int 10 with _ -> 0 (* cc_lint: allow L1 L5 *)" ])

let test_comment_and_string_immunity () =
  check_findings "tokens in comments and strings are data" []
    (scan ~file:"lib/sparsify/fake.ml"
       [
         "(* Random.int would be a violation here *)";
         "let doc = \"uses Random.int and Obj.magic and Unix.time\"";
         "(* nested (* Obj.magic *) still comment *)";
         "let c = 'R'";
       ]);
  check_findings "code after a comment on the same line is still scanned"
    [ (Rule.L1, 1) ]
    (scan ~file:"lib/sparsify/fake.ml"
       [ "let x = (* entropy! *) Random.int 10" ])

let test_token_boundaries () =
  check_findings "identifier prefixes do not match" []
    (scan ~file:"lib/sparsify/fake.ml"
       [
         "let x = My_random.int 10";
         "let y = Pseudo_Sim.exchange 1";
         "let z = sys_time ()";
       ])

let test_scan_strip_preserves_lines () =
  let src = "let a = 1\n(* multi\nline\ncomment *)\nlet b = \"x\ny\"" in
  let stripped = Scan.strip src in
  Alcotest.(check int) "same length" (String.length src)
    (String.length stripped);
  Alcotest.(check int) "same line count"
    (List.length (Scan.lines src))
    (List.length (Scan.lines stripped))

(* --------------------------------------------------------- planted L8 *)

let test_l8_hot_alloc () =
  (* Only functions named by the hot marker are in scope; the marker's
     position in the file does not matter. *)
  let findings =
    scan ~file:"lib/runtime/fake_kernel.ml"
      [
        "(* cc_lint: hot deliver scatter *)";
        "let create n = Array.make n 0";
        "let deliver t =";
        "  let tbl = Hashtbl.create 16 in";
        "  ignore tbl;";
        "  Array.make 4 0";
        "let cold () = Bytes.create 8";
        "and scatter () = Bytes.create 8";
      ]
  in
  check_findings "allocs inside hot functions only"
    [ (Rule.L8, 4); (Rule.L8, 6); (Rule.L8, 8) ]
    findings;
  List.iter
    (fun f ->
      Alcotest.(check bool) "message names the offending primitive" true
        (String.length f.Lint.message > 0))
    findings

let test_l8_requires_marker () =
  check_findings "no marker, no findings" []
    (scan ~file:"lib/runtime/fake_kernel.ml"
       [ "let deliver t = Hashtbl.create 16" ]);
  (* The rule is lexical and file-global, so it also works outside lib
     (the hot marker is an explicit opt-in, unlike the charged-layer
     path scoping of L1/L2/L7). *)
  check_findings "marker works in bin too"
    [ (Rule.L8, 2) ]
    (scan ~file:"bin/fake_tool.ml"
       [ "(* cc_lint: hot main *)"; "let main () = Array.make 3 1" ])

let test_l8_allow_suppression () =
  check_findings "allow marker silences the hot-path rule" []
    (scan ~file:"lib/runtime/fake_kernel.ml"
       [
         "(* cc_lint: hot deliver *)";
         "let deliver t = Array.make t 0 (* cc_lint: allow L8 — escapes *)";
       ]);
  (* Suppressing a different rule does not silence L8. *)
  check_findings "unrelated allow id keeps the finding"
    [ (Rule.L8, 2) ]
    (scan ~file:"lib/runtime/fake_kernel.ml"
       [
         "(* cc_lint: hot deliver *)";
         "let deliver t = Array.make t 0 (* cc_lint: allow L5 *)";
       ])

(* --------------------------------------------------------- planted L9 *)

let test_l9_raw_sockets () =
  let src =
    [
      "let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0";
      "let ok = Unix.getpid ()";
      "let n = Unix.read fd buf 0 len";
      "let m = Unix.single_write fd buf 0 len";
      "let s = \"Unix.connect in a string is data\"";
    ]
  in
  check_findings "raw socket calls flagged outside the wire layer"
    [ (Rule.L9, 1); (Rule.L9, 3); (Rule.L9, 4) ]
    (scan ~file:"lib/fault/fake.ml" src);
  check_findings "bin is not wire-privileged either"
    [ (Rule.L9, 1); (Rule.L9, 3); (Rule.L9, 4) ]
    (scan ~file:"bin/fake_tool.ml" src)

let test_l9_wire_privilege () =
  let src = [ "let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0" ] in
  check_findings "lib/wire may open sockets" []
    (scan ~file:"lib/wire/fake_link.ml" src);
  check_findings "the socket transport may too" []
    (scan ~file:"lib/clique/socket.ml" src);
  check_findings "the rest of lib/clique may not"
    [ (Rule.L9, 1) ]
    (scan ~file:"lib/clique/sim.ml" src)

let test_l9_allow_suppression () =
  (* The id token after the allow marker matches case-insensitively. *)
  check_findings "lowercase allow marker suppresses" []
    (scan ~file:"lib/fault/fake.ml"
       [ "let fd = Unix.accept lsock (* cc_lint: allow l9 *)" ]);
  check_findings "uppercase allow marker suppresses" []
    (scan ~file:"lib/fault/fake.ml"
       [ "let fd = Unix.accept lsock (* cc_lint: allow L9 *)" ]);
  check_findings "unrelated allow id keeps the finding"
    [ (Rule.L9, 1) ]
    (scan ~file:"lib/fault/fake.ml"
       [ "let fd = Unix.accept lsock (* cc_lint: allow L2 *)" ])

(* ------------------------------------------------- output and catalog *)

let test_report_format () =
  let f =
    List.hd (scan ~file:"lib/flow/x.ml" [ "let t = Sys.time ()" ])
  in
  let line = Analysis.Report.to_string f in
  Alcotest.(check bool) "machine-readable prefix" true
    (String.sub line 0 (String.length "lib/flow/x.ml:1 L2 ")
    = "lib/flow/x.ml:1 L2 ")

let test_rule_catalog () =
  Alcotest.(check int) "thirteen rules" 13 (List.length Rule.all);
  List.iter
    (fun id ->
      Alcotest.(check (option rule_t))
        "to_string/of_string roundtrip" (Some id)
        (Rule.of_string (Rule.to_string id)))
    Rule.all;
  (* The catalog range is derived from Rule.all (no stale "L1-L6" strings
     anywhere): both the --rules table and the JSON header grow with the
     variant automatically. *)
  Alcotest.(check string) "range derived from Rule.all" "L1-L13"
    (Analysis.Report.rules_range ());
  Alcotest.(check int) "one table line per rule" (List.length Rule.all)
    (List.length
       (String.split_on_char '\n' (Analysis.Report.rules_table ())));
  Alcotest.(check (list rule_t)) "semantic subset"
    [ Rule.L10; Rule.L11; Rule.L12 ]
    Rule.semantic

let test_every_rule_detected_once () =
  (* One source tripping L1..L5 on five known lines, as the acceptance
     criterion demands: each planted violation is found with the correct
     rule id and line. *)
  let findings =
    scan ~file:"lib/rounding/planted.ml"
      [
        "let l1 = Random.bits ()";
        "let l2 = Unix.time ()";
        "let l3 rt = Congest.route rt msgs";
        "let l4 = Obj.magic 0";
        "let l5 = try l4 with _ -> 1";
      ]
  in
  check_findings "all five lexical rules, in order"
    [ (Rule.L1, 1); (Rule.L2, 2); (Rule.L3, 3); (Rule.L4, 4); (Rule.L5, 5) ]
    findings

let lexical_suite =
  [
    Alcotest.test_case "L1: entropy in charged layer" `Quick test_l1_entropy;
    Alcotest.test_case "L1: scoping" `Quick test_l1_scoped_to_charged_layers;
    Alcotest.test_case "L2: wall-clock" `Quick test_l2_wallclock;
    Alcotest.test_case "L3: transport bypass" `Quick test_l3_transport_bypass;
    Alcotest.test_case "L4: Obj.magic" `Quick test_l4_obj_magic;
    Alcotest.test_case "L5: catch-all handler" `Quick test_l5_catch_all;
    Alcotest.test_case "L6: missing mli" `Quick test_l6_missing_mli;
    Alcotest.test_case "L7: recovery in charged layer" `Quick
      test_l7_recovery_in_charged_layer;
    Alcotest.test_case "L13: Shard_down outside the supervisor" `Quick
      test_l13_shard_down_outside_supervisor;
    Alcotest.test_case "L8: allocation in hot-marked function" `Quick
      test_l8_hot_alloc;
    Alcotest.test_case "L8: marker is the opt-in" `Quick
      test_l8_requires_marker;
    Alcotest.test_case "L8: allow suppression" `Quick
      test_l8_allow_suppression;
    Alcotest.test_case "L9: raw sockets outside the wire layer" `Quick
      test_l9_raw_sockets;
    Alcotest.test_case "L9: wire layer is privileged" `Quick
      test_l9_wire_privilege;
    Alcotest.test_case "L9: case-insensitive allow" `Quick
      test_l9_allow_suppression;
    Alcotest.test_case "suppression markers" `Quick test_suppression;
    Alcotest.test_case "comment/string immunity" `Quick
      test_comment_and_string_immunity;
    Alcotest.test_case "token boundaries" `Quick test_token_boundaries;
    Alcotest.test_case "strip preserves line structure" `Quick
      test_scan_strip_preserves_lines;
    Alcotest.test_case "report format" `Quick test_report_format;
    Alcotest.test_case "rule catalog" `Quick test_rule_catalog;
    Alcotest.test_case "planted L1-L5 all detected" `Quick
      test_every_rule_detected_once;
  ]

(* ===================================================== semantic pass == *)

module Semantic = Analysis.Semantic
module Report = Analysis.Report
module Json = Metrics.Json

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  go 0

let sem_findings sources = (Semantic.analyze sources).Semantic.findings

(* -------------------------------------------------- L10: transitive purity *)

(* A charged sparsifier reaching [Random.int] through two helper hops in
   lib/core — the exact shape the lexical pass is blind to, since no
   charged-layer *line* mentions an entropy token. *)
let entropy_src = "let draw n = Random.int n\n"
let helper_src = "let scale x = x * 2\nlet pick n = Entropy.draw (scale n)\n"
let algo_src = "let choose n = Helper.pick n\nlet pure n = n + 1\n"

let l10_corpus =
  [
    ("lib/core/entropy.ml", entropy_src);
    ("lib/core/helper.ml", helper_src);
    ("lib/sparsify/algo.ml", algo_src);
  ]

let test_l10_multihop_chain () =
  (* Pinned blind spot #1: the lexical pass sees nothing in any of the
     three files (lib/core is not a charged layer, and the charged file
     never utters "Random"). *)
  List.iter
    (fun (file, src) ->
      check_findings ("lexical pass is blind: " ^ file) []
        (Lint.scan_source ~file src))
    l10_corpus;
  (* ... and the semantic pass pins it with a hop-by-hop witness chain
     that names every intermediate function. *)
  let findings = sem_findings l10_corpus in
  check_findings "one L10 finding at the charged call site"
    [ (Rule.L10, 1) ] findings;
  let f = List.hd findings in
  Alcotest.(check string) "anchored in the charged file" "lib/sparsify/algo.ml"
    f.Lint.file;
  Alcotest.(check bool) "chain names every hop" true
    (contains f.Lint.message
       "Algo.choose -> Helper.pick -> Entropy.draw -> Random.int")

let test_l10_stops_at_privileged_layers () =
  (* Charged code calling the metered runtime (which spawns domains
     internally) is the sanctioned path: traversal must not descend into
     lib/runtime and surface its Domain use against the caller. *)
  check_findings "runtime internals are not charged to callers" []
    (sem_findings
       [
         ("lib/runtime/fake_rt.ml", "let step f = ignore (Domain.spawn f)\n");
         ("lib/flow/fake_push.ml", "let run f = Fake_rt.step f\n");
       ])

let test_l10_direct_hit_and_suppression () =
  let findings =
    sem_findings
      [ ("lib/euler/fake_tour.ml", "let now () = Unix.gettimeofday ()\n") ]
  in
  check_findings "direct impurity is a one-hop chain"
    [ (Rule.L10, 1) ] findings;
  Alcotest.(check bool) "single-hop chain format" true
    (contains (List.hd findings).Lint.message
       "Fake_tour.now -> Unix.gettimeofday");
  check_findings "allow marker silences L10" []
    (sem_findings
       [
         ( "lib/euler/fake_tour.ml",
           "let now () = Unix.gettimeofday () (* cc_lint: allow L10 *)\n" );
       ])

let test_l10_module_alias () =
  (* [module E = Entropy] must expand before suffix matching, or the
     reference dangles as an unknown external and the chain is lost. *)
  let findings =
    sem_findings
      [
        ("lib/core/entropy.ml", entropy_src);
        ( "lib/laplacian/fake_solver.ml",
          "module E = Entropy\nlet solve n = E.draw n\n" );
      ]
  in
  check_findings "alias-qualified call resolves" [ (Rule.L10, 2) ] findings;
  Alcotest.(check bool) "chain crosses the alias" true
    (contains (List.hd findings).Lint.message
       "Fake_solver.solve -> Entropy.draw -> Random.int")

(* -------------------------------------------------- L11: domain races *)

let sched_src =
  "let counter = ref 0\n\
   let step lo hi = incr counter; ignore (lo + hi)\n\
   let fan pool n = Pool.run pool ~n (fun lo hi -> step lo hi)\n"

let test_l11_planted_race () =
  let findings = sem_findings [ ("lib/runtime/fake_sched.ml", sched_src) ] in
  check_findings "global write from the fanned region"
    [ (Rule.L11, 2) ] findings;
  let msg = (List.hd findings).Lint.message in
  Alcotest.(check bool) "names the global and the writer" true
    (contains msg "Fake_sched.counter" && contains msg "Fake_sched.step")

let test_l11_exemptions () =
  check_findings "Atomic state is the sanctioned fix" []
    (sem_findings
       [
         ( "lib/runtime/fake_sched.ml",
           "let counter = Atomic.make 0\n\
            let step lo hi = Atomic.incr counter; ignore (lo + hi)\n\
            let fan pool n = Pool.run pool ~n (fun lo hi -> step lo hi)\n" );
       ]);
  check_findings "Mutex discipline exempts the writer" []
    (sem_findings
       [
         ( "lib/runtime/fake_sched.ml",
           "let counter = ref 0\n\
            let m = Mutex.create ()\n\
            let step lo hi =\n\
           \  Mutex.lock m; incr counter; Mutex.unlock m; ignore (lo + hi)\n\
            let fan pool n = Pool.run pool ~n (fun lo hi -> step lo hi)\n" );
       ]);
  check_findings "allow marker silences L11" []
    (sem_findings
       [
         ( "lib/runtime/fake_sched.ml",
           "let counter = ref 0\n\
            let step lo hi = incr counter; ignore (lo + hi) (* cc_lint: \
            allow L11 — planted *)\n\
            let fan pool n = Pool.run pool ~n (fun lo hi -> step lo hi)\n" );
       ]);
  check_findings "scoped to lib/: harness globals are out of model" []
    (sem_findings [ ("bench/fake_sched.ml", sched_src) ]);
  check_findings "no domain fan-out, no region, no finding" []
    (sem_findings
       [
         ( "lib/runtime/fake_acc.ml",
           "let counter = ref 0\nlet bump () = incr counter\n" );
       ])

(* ------------------------------------- L12: AST-accurate hot-path allocs *)

let factory_src =
  "(* cc_lint: hot deliver *)\n\
   let make_deliver n =\n\
  \  let deliver v =\n\
  \    let buf = Array.make n v in\n\
  \    buf\n\
  \  in\n\
  \  deliver\n"

let test_l12_nested_let_blind_spot () =
  (* Pinned blind spot #2: the lexical tracker only follows column-0
     bindings, so a hot function bound by a nested [let] under a cold
     factory hides its allocation from L8. *)
  check_findings "lexical pass is blind to the nested binding" []
    (Lint.scan_source ~file:"lib/runtime/fake_factory.ml" factory_src);
  let findings =
    sem_findings [ ("lib/runtime/fake_factory.ml", factory_src) ]
  in
  check_findings "L12 sees the nested hot binding" [ (Rule.L12, 4) ] findings;
  let msg = (List.hd findings).Lint.message in
  Alcotest.(check bool) "names the primitive and the hot function" true
    (contains msg "Array.make" && contains msg "deliver")

let test_l12_matches_l8_on_flat_code () =
  (* The differential between the passes is itself a test: on column-0
     code the AST rule must agree line-for-line with the lexical one. *)
  let src_lines =
    [
      "(* cc_lint: hot deliver scatter *)";
      "let create n = Array.make n 0";
      "let deliver t =";
      "  let tbl = Hashtbl.create 16 in";
      "  ignore tbl;";
      "  Array.make 4 0";
      "let cold () = Bytes.create 8";
      "and scatter () = Bytes.create 8";
    ]
  in
  let file = "lib/runtime/fake_kernel.ml" in
  let src = String.concat "\n" src_lines ^ "\n" in
  let lexical =
    List.map
      (fun (f : Lint.finding) -> f.line)
      (Lint.scan_source ~file src)
  in
  let semantic =
    List.map (fun (f : Lint.finding) -> f.line) (sem_findings [ (file, src) ])
  in
  Alcotest.(check (list int)) "same allocation sites" lexical semantic;
  check_findings "semantic findings carry L12"
    [ (Rule.L12, 4); (Rule.L12, 6); (Rule.L12, 8) ]
    (sem_findings [ (file, src) ])

let test_l12_honors_l8_allow () =
  let with_marker marker =
    Printf.sprintf
      "(* cc_lint: hot deliver *)\nlet deliver t = Array.make t 0 (* cc_lint: \
       allow %s *)\n"
      marker
  in
  check_findings "legacy allow L8 markers keep working" []
    (sem_findings [ ("lib/runtime/fake_kernel.ml", with_marker "L8") ]);
  check_findings "allow L12 works too" []
    (sem_findings [ ("lib/runtime/fake_kernel.ml", with_marker "L12") ]);
  check_findings "unrelated allow id keeps the finding"
    [ (Rule.L12, 2) ]
    (sem_findings [ ("lib/runtime/fake_kernel.ml", with_marker "L5") ])

(* ------------------------------------------- robustness, JSON, graph *)

let test_parse_errors_are_collected () =
  let r =
    Semantic.analyze
      [
        ("lib/core/bad.ml", "let = broken (");
        ("lib/core/bad.mli", "val : int");
        ("lib/sparsify/good.ml", "let pure x = x + 1\n");
      ]
  in
  Alcotest.(check int) "both bad files reported" 2
    (List.length r.Semantic.errors);
  List.iter
    (fun e ->
      Alcotest.(check bool) "error names the file" true
        (contains e "lib/core/bad."))
    r.Semantic.errors;
  check_findings "good files still analyzed, cleanly" [] r.Semantic.findings

let test_json_roundtrip () =
  let r = Semantic.analyze l10_corpus in
  let errors = [ "lib/core/bad.ml:1 syntax error" ] in
  let j = Report.to_json ~errors r.Semantic.findings in
  let s = Json.to_string j in
  Alcotest.(check bool) "schema tag embedded" true (contains s Report.schema);
  Alcotest.(check bool) "rules span embedded" true (contains s "L1-L13");
  (match Json.of_string s with
  | Ok j' -> Alcotest.(check bool) "round-trips" true (Json.equal j j')
  | Error e -> Alcotest.fail ("to_json output failed to parse: " ^ e));
  (match Json.member "count" j with
  | Some c ->
    Alcotest.(check (option int)) "count field matches findings"
      (Some (List.length r.Semantic.findings))
      (Json.to_int_opt c)
  | None -> Alcotest.fail "count field missing")

let test_graph_dot () =
  let r = Semantic.analyze l10_corpus in
  let dot = Analysis.Callgraph.to_dot r.Semantic.graph in
  Alcotest.(check bool) "digraph preamble" true (contains dot "digraph");
  Alcotest.(check bool) "nodes present" true
    (contains dot "Algo.choose" && contains dot "Helper.pick");
  Alcotest.(check bool) "edges present" true (contains dot "->")

let semantic_suite =
  [
    Alcotest.test_case "L10: multi-hop chain vs lexical blind spot" `Quick
      test_l10_multihop_chain;
    Alcotest.test_case "L10: privileged layers stop traversal" `Quick
      test_l10_stops_at_privileged_layers;
    Alcotest.test_case "L10: direct hit and suppression" `Quick
      test_l10_direct_hit_and_suppression;
    Alcotest.test_case "L10: module alias resolution" `Quick
      test_l10_module_alias;
    Alcotest.test_case "L11: planted race" `Quick test_l11_planted_race;
    Alcotest.test_case "L11: exemptions and scoping" `Quick
      test_l11_exemptions;
    Alcotest.test_case "L12: nested-let blind spot" `Quick
      test_l12_nested_let_blind_spot;
    Alcotest.test_case "L12: agrees with L8 on flat code" `Quick
      test_l12_matches_l8_on_flat_code;
    Alcotest.test_case "L12: honors legacy allow L8" `Quick
      test_l12_honors_l8_allow;
    Alcotest.test_case "parse errors are collected, not fatal" `Quick
      test_parse_errors_are_collected;
    Alcotest.test_case "JSON round-trips through Metrics.Json" `Quick
      test_json_roundtrip;
    Alcotest.test_case "call-graph DOT dump" `Quick test_graph_dot;
  ]

let () =
  Alcotest.run "analysis"
    [ ("lexical", lexical_suite); ("semantic", semantic_suite) ]
