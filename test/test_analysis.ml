(* Tests for the cc_lint model-compliance analyzer: every rule L1-L6 is
   planted in an in-memory source string and must be detected with the
   correct rule id and line number; suppression markers, comment/string
   immunity, and path scoping are exercised alongside. *)

module Lint = Analysis.Lint
module Rule = Analysis.Rule
module Scan = Analysis.Scan

let rule_t = Alcotest.testable
    (fun fmt id -> Format.pp_print_string fmt (Rule.to_string id))
    (fun a b -> a = b)

let check_findings what expected findings =
  Alcotest.(check (list (pair rule_t int)))
    what expected
    (List.map (fun f -> (f.Lint.rule, f.Lint.line)) findings)

let scan ~file lines = Lint.scan_source ~file (String.concat "\n" lines)

(* ------------------------------------------------------ planted L1..L5 *)

let test_l1_entropy () =
  let findings =
    scan ~file:"lib/sparsify/fake.ml"
      [
        "let deterministic = 1";
        "";
        "let bad () = Random.int 10";
        "let sanctioned (p : Prng.t) = Prng.int p 10";
      ]
  in
  check_findings "Random. flagged at line 3" [ (Rule.L1, 3) ] findings;
  Alcotest.(check bool) "message names Graph.Prng" true
    (String.length (List.hd findings).Lint.message > 0
    && String.sub (Analysis.Report.to_string (List.hd findings)) 0
         (String.length "lib/sparsify/fake.ml:3 L1")
       = "lib/sparsify/fake.ml:3 L1")

let test_l1_scoped_to_charged_layers () =
  (* The graph generators are workload builders, not charged algorithms:
     Random there is out of scope (they use the seeded Prng anyway). *)
  check_findings "Random. allowed outside charged layers" []
    (scan ~file:"lib/graph/fake_gen.ml" [ "let x = Random.int 3" ]);
  check_findings "bin is not a charged layer" []
    (scan ~file:"bin/fake_cli.ml" [ "let x = Random.int 3" ])

let test_l2_wallclock () =
  check_findings "Unix. and Sys.time flagged with lines"
    [ (Rule.L2, 1); (Rule.L2, 4) ]
    (scan ~file:"lib/flow/fake.ml"
       [
         "let t0 = Unix.gettimeofday ()";
         "let fine = Sys.word_size";
         "let timer = \"Sys.time in a string is data, not a call\"";
         "let t1 = Sys.time ()";
       ])

let test_l3_transport_bypass () =
  let src =
    [
      "let f sim = Sim.exchange sim boxes";
      "let g c = Clique.Congest.broadcast c values";
      "let ok rt = Runtime_instance.exchange rt boxes";
      "let also_ok = Sim.create 4";
    ]
  in
  check_findings "bypass flagged in a charged layer"
    [ (Rule.L3, 1); (Rule.L3, 2) ]
    (scan ~file:"lib/euler/fake.ml" src);
  check_findings "lib/runtime is privileged" []
    (scan ~file:"lib/runtime/fake.ml" src);
  check_findings "lib/clique is privileged" []
    (scan ~file:"lib/clique/fake.ml" src)

let test_l4_obj_magic () =
  check_findings "Obj.magic flagged everywhere"
    [ (Rule.L4, 2) ]
    (scan ~file:"lib/linalg/fake.ml"
       [ "let a = 1"; "let b : int = Obj.magic \"boom\"" ])

let test_l5_catch_all () =
  check_findings "catch-all handler flagged"
    [ (Rule.L5, 1) ]
    (scan ~file:"bin/fake.ml"
       [
         "let x = try dangerous () with _ -> 0";
         "let y = match v with _ -> 0";
         "let z = try f () with Not_found -> 1";
       ])

let test_l7_recovery_in_charged_layer () =
  let src =
    [
      "let swallowed = try f () with Recover.Fault_detected _ -> fallback";
      "let retried rt = Recover.run ~retries:3 ~check rt f";
      "let fine = Check.eulerian g bits";
    ]
  in
  check_findings "Fault_detected and Recover.run flagged in charged layers"
    [ (Rule.L7, 1); (Rule.L7, 2) ]
    (scan ~file:"lib/laplacian/fake.ml" src);
  check_findings "the driver layers may recover" []
    (scan ~file:"lib/fault/fake.ml" src);
  check_findings "tests may recover" [] (scan ~file:"test/fake.ml" src);
  check_findings "suppressible like every rule" []
    (scan ~file:"lib/euler/fake.ml"
       [ "let x = Recover.run rt f (* cc_lint: allow L7 *)" ])

(* ------------------------------------------------------------------ L6 *)

let test_l6_missing_mli () =
  let findings =
    Lint.missing_mlis
      [
        "lib/foo/a.ml";
        "lib/foo/a.mli";
        "lib/foo/b.ml";
        "bin/cli.ml";
        "test/test_x.ml";
      ]
  in
  check_findings "only the lib module without .mli" [ (Rule.L6, 1) ] findings;
  Alcotest.(check string) "finding names the .ml file" "lib/foo/b.ml"
    (List.hd findings).Lint.file

(* ------------------------------------------- suppression and immunity *)

let test_suppression () =
  check_findings "allow marker suppresses exactly its rule" []
    (scan ~file:"lib/sparsify/fake.ml"
       [ "let x = Random.int 10 (* cc_lint: allow L1 *)" ]);
  check_findings "marker for another rule does not suppress"
    [ (Rule.L1, 1) ]
    (scan ~file:"lib/sparsify/fake.ml"
       [ "let x = Random.int 10 (* cc_lint: allow L2 *)" ]);
  check_findings "one marker can allow several rules" []
    (scan ~file:"lib/sparsify/fake.ml"
       [ "let x = try Random.int 10 with _ -> 0 (* cc_lint: allow L1 L5 *)" ])

let test_comment_and_string_immunity () =
  check_findings "tokens in comments and strings are data" []
    (scan ~file:"lib/sparsify/fake.ml"
       [
         "(* Random.int would be a violation here *)";
         "let doc = \"uses Random.int and Obj.magic and Unix.time\"";
         "(* nested (* Obj.magic *) still comment *)";
         "let c = 'R'";
       ]);
  check_findings "code after a comment on the same line is still scanned"
    [ (Rule.L1, 1) ]
    (scan ~file:"lib/sparsify/fake.ml"
       [ "let x = (* entropy! *) Random.int 10" ])

let test_token_boundaries () =
  check_findings "identifier prefixes do not match" []
    (scan ~file:"lib/sparsify/fake.ml"
       [
         "let x = My_random.int 10";
         "let y = Pseudo_Sim.exchange 1";
         "let z = sys_time ()";
       ])

let test_scan_strip_preserves_lines () =
  let src = "let a = 1\n(* multi\nline\ncomment *)\nlet b = \"x\ny\"" in
  let stripped = Scan.strip src in
  Alcotest.(check int) "same length" (String.length src)
    (String.length stripped);
  Alcotest.(check int) "same line count"
    (List.length (Scan.lines src))
    (List.length (Scan.lines stripped))

(* --------------------------------------------------------- planted L8 *)

let test_l8_hot_alloc () =
  (* Only functions named by the hot marker are in scope; the marker's
     position in the file does not matter. *)
  let findings =
    scan ~file:"lib/runtime/fake_kernel.ml"
      [
        "(* cc_lint: hot deliver scatter *)";
        "let create n = Array.make n 0";
        "let deliver t =";
        "  let tbl = Hashtbl.create 16 in";
        "  ignore tbl;";
        "  Array.make 4 0";
        "let cold () = Bytes.create 8";
        "and scatter () = Bytes.create 8";
      ]
  in
  check_findings "allocs inside hot functions only"
    [ (Rule.L8, 4); (Rule.L8, 6); (Rule.L8, 8) ]
    findings;
  List.iter
    (fun f ->
      Alcotest.(check bool) "message names the offending primitive" true
        (String.length f.Lint.message > 0))
    findings

let test_l8_requires_marker () =
  check_findings "no marker, no findings" []
    (scan ~file:"lib/runtime/fake_kernel.ml"
       [ "let deliver t = Hashtbl.create 16" ]);
  (* The rule is lexical and file-global, so it also works outside lib
     (the hot marker is an explicit opt-in, unlike the charged-layer
     path scoping of L1/L2/L7). *)
  check_findings "marker works in bin too"
    [ (Rule.L8, 2) ]
    (scan ~file:"bin/fake_tool.ml"
       [ "(* cc_lint: hot main *)"; "let main () = Array.make 3 1" ])

let test_l8_allow_suppression () =
  check_findings "allow marker silences the hot-path rule" []
    (scan ~file:"lib/runtime/fake_kernel.ml"
       [
         "(* cc_lint: hot deliver *)";
         "let deliver t = Array.make t 0 (* cc_lint: allow L8 — escapes *)";
       ]);
  (* Suppressing a different rule does not silence L8. *)
  check_findings "unrelated allow id keeps the finding"
    [ (Rule.L8, 2) ]
    (scan ~file:"lib/runtime/fake_kernel.ml"
       [
         "(* cc_lint: hot deliver *)";
         "let deliver t = Array.make t 0 (* cc_lint: allow L5 *)";
       ])

(* --------------------------------------------------------- planted L9 *)

let test_l9_raw_sockets () =
  let src =
    [
      "let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0";
      "let ok = Unix.getpid ()";
      "let n = Unix.read fd buf 0 len";
      "let m = Unix.single_write fd buf 0 len";
      "let s = \"Unix.connect in a string is data\"";
    ]
  in
  check_findings "raw socket calls flagged outside the wire layer"
    [ (Rule.L9, 1); (Rule.L9, 3); (Rule.L9, 4) ]
    (scan ~file:"lib/fault/fake.ml" src);
  check_findings "bin is not wire-privileged either"
    [ (Rule.L9, 1); (Rule.L9, 3); (Rule.L9, 4) ]
    (scan ~file:"bin/fake_tool.ml" src)

let test_l9_wire_privilege () =
  let src = [ "let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0" ] in
  check_findings "lib/wire may open sockets" []
    (scan ~file:"lib/wire/fake_link.ml" src);
  check_findings "the socket transport may too" []
    (scan ~file:"lib/clique/socket.ml" src);
  check_findings "the rest of lib/clique may not"
    [ (Rule.L9, 1) ]
    (scan ~file:"lib/clique/sim.ml" src)

let test_l9_allow_suppression () =
  (* The id token after the allow marker matches case-insensitively. *)
  check_findings "lowercase allow marker suppresses" []
    (scan ~file:"lib/fault/fake.ml"
       [ "let fd = Unix.accept lsock (* cc_lint: allow l9 *)" ]);
  check_findings "uppercase allow marker suppresses" []
    (scan ~file:"lib/fault/fake.ml"
       [ "let fd = Unix.accept lsock (* cc_lint: allow L9 *)" ]);
  check_findings "unrelated allow id keeps the finding"
    [ (Rule.L9, 1) ]
    (scan ~file:"lib/fault/fake.ml"
       [ "let fd = Unix.accept lsock (* cc_lint: allow L2 *)" ])

(* ------------------------------------------------- output and catalog *)

let test_report_format () =
  let f =
    List.hd (scan ~file:"lib/flow/x.ml" [ "let t = Sys.time ()" ])
  in
  let line = Analysis.Report.to_string f in
  Alcotest.(check bool) "machine-readable prefix" true
    (String.sub line 0 (String.length "lib/flow/x.ml:1 L2 ")
    = "lib/flow/x.ml:1 L2 ")

let test_rule_catalog () =
  Alcotest.(check int) "nine rules" 9 (List.length Rule.all);
  List.iter
    (fun id ->
      Alcotest.(check (option rule_t))
        "to_string/of_string roundtrip" (Some id)
        (Rule.of_string (Rule.to_string id)))
    Rule.all

let test_every_rule_detected_once () =
  (* One source tripping L1..L5 on five known lines, as the acceptance
     criterion demands: each planted violation is found with the correct
     rule id and line. *)
  let findings =
    scan ~file:"lib/rounding/planted.ml"
      [
        "let l1 = Random.bits ()";
        "let l2 = Unix.time ()";
        "let l3 rt = Congest.route rt msgs";
        "let l4 = Obj.magic 0";
        "let l5 = try l4 with _ -> 1";
      ]
  in
  check_findings "all five lexical rules, in order"
    [ (Rule.L1, 1); (Rule.L2, 2); (Rule.L3, 3); (Rule.L4, 4); (Rule.L5, 5) ]
    findings

let suite =
  [
    Alcotest.test_case "L1: entropy in charged layer" `Quick test_l1_entropy;
    Alcotest.test_case "L1: scoping" `Quick test_l1_scoped_to_charged_layers;
    Alcotest.test_case "L2: wall-clock" `Quick test_l2_wallclock;
    Alcotest.test_case "L3: transport bypass" `Quick test_l3_transport_bypass;
    Alcotest.test_case "L4: Obj.magic" `Quick test_l4_obj_magic;
    Alcotest.test_case "L5: catch-all handler" `Quick test_l5_catch_all;
    Alcotest.test_case "L6: missing mli" `Quick test_l6_missing_mli;
    Alcotest.test_case "L7: recovery in charged layer" `Quick
      test_l7_recovery_in_charged_layer;
    Alcotest.test_case "L8: allocation in hot-marked function" `Quick
      test_l8_hot_alloc;
    Alcotest.test_case "L8: marker is the opt-in" `Quick
      test_l8_requires_marker;
    Alcotest.test_case "L8: allow suppression" `Quick
      test_l8_allow_suppression;
    Alcotest.test_case "L9: raw sockets outside the wire layer" `Quick
      test_l9_raw_sockets;
    Alcotest.test_case "L9: wire layer is privileged" `Quick
      test_l9_wire_privilege;
    Alcotest.test_case "L9: case-insensitive allow" `Quick
      test_l9_allow_suppression;
    Alcotest.test_case "suppression markers" `Quick test_suppression;
    Alcotest.test_case "comment/string immunity" `Quick
      test_comment_and_string_immunity;
    Alcotest.test_case "token boundaries" `Quick test_token_boundaries;
    Alcotest.test_case "strip preserves line structure" `Quick
      test_scan_strip_preserves_lines;
    Alcotest.test_case "report format" `Quick test_report_format;
    Alcotest.test_case "rule catalog" `Quick test_rule_catalog;
    Alcotest.test_case "planted L1-L5 all detected" `Quick
      test_every_rule_detected_once;
  ]
