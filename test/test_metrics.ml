(* The observability layer: JSON serializer/parser (the BENCH_*.json
   format), the metrics registry, and the registry's non-interference with
   the runtime — attaching a registry must never change rounds, phases, or
   the sanitizer's determinism transcripts. *)

module J = Metrics.Json
module K = Clique.Kernel

(* ------------------------------------------------------------- JSON *)

let test_escaping () =
  Alcotest.(check string)
    "quotes, backslash, controls" "a\\\"b\\\\c\\nd\\te\\u0001"
    (J.escape_string "a\"b\\c\nd\te\001");
  Alcotest.(check string)
    "utf-8 passthrough" "caf\xc3\xa9"
    (J.escape_string "caf\xc3\xa9");
  Alcotest.(check string)
    "serialized string" "\"line1\\nline2\""
    (J.to_string ~minify:true (J.String "line1\nline2"))

let bench_like =
  J.Assoc
    [
      ("schema_version", J.Int 1);
      ("experiment", J.String "E1");
      ("title", J.String "quotes \" and \\ backslashes \n newlines");
      ( "series",
        J.List
          [
            J.Assoc
              [
                ("name", J.String "size-and-alpha");
                ("seed", J.Int 3);
                ( "rows",
                  J.List
                    [
                      J.Assoc
                        [
                          ("key", J.String "n=40 u=1");
                          ( "rounds",
                            J.Assoc
                              [
                                ("total", J.Int 84);
                                ( "phases",
                                  J.Assoc
                                    [
                                      ("decompose", J.Int 56);
                                      ("gather", J.Int 28);
                                    ] );
                              ] );
                          ( "stats",
                            J.Assoc
                              [
                                ("alpha", J.Float 5.999172663670298);
                                ("tiny", J.Float 1e-30);
                                ("neg", J.Int (-42));
                                ("flag", J.Bool true);
                                ("missing", J.Null);
                              ] );
                        ];
                    ] );
              ];
          ] );
    ]

let check_roundtrip name doc =
  match J.of_string (J.to_string doc) with
  | Ok v -> Alcotest.(check bool) (name ^ " pretty") true (J.equal doc v)
  | Error e -> Alcotest.fail (name ^ ": " ^ e)

let test_roundtrip () =
  check_roundtrip "bench-like document" bench_like;
  (match J.of_string (J.to_string ~minify:true bench_like) with
  | Ok v -> Alcotest.(check bool) "minified" true (J.equal bench_like v)
  | Error e -> Alcotest.fail e);
  (* Floats keep their exact bits through serialize/parse. *)
  List.iter
    (fun f ->
      match J.of_string (J.to_string (J.Float f)) with
      | Ok (J.Float f') ->
        Alcotest.(check bool)
          (Printf.sprintf "float %h survives" f)
          true (f = f')
      | Ok (J.Int i) ->
        Alcotest.(check bool) "integral float" true (float_of_int i = f)
      | _ -> Alcotest.fail "float did not round-trip")
    [ 0.1; 1.5; -3.25; 1e-9; 6.02e23; 5.999172663670298; 0. ]

let test_parser_accepts () =
  (match J.of_string " { \"a\" : [ 1 , 2.5 , null , true ] } " with
  | Ok v ->
    Alcotest.(check bool) "whitespace tolerated" true
      (J.equal v
         (J.Assoc
            [ ("a", J.List [ J.Int 1; J.Float 2.5; J.Null; J.Bool true ]) ]))
  | Error e -> Alcotest.fail e);
  (match J.of_string {|"\u0041\ud83d\ude00"|} with
  | Ok (J.String s) ->
    Alcotest.(check string) "unicode escapes" "A\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "unicode escape parse");
  match J.of_string "-17" with
  | Ok (J.Int -17) -> ()
  | _ -> Alcotest.fail "negative int"

let test_parser_rejects () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [ "{"; "tru"; "[1 2]"; "\"unterminated"; "{}garbage"; "\"bad \\x\""; "" ]

(* --------------------------------------------------------- registry *)

let test_counters_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "counter" 42 (Metrics.counter_value c);
  Alcotest.(check int) "same name, same counter" 42
    (Metrics.counter_value (Metrics.counter m "c"));
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr ~by:(-1) c);
  let g = Metrics.gauge m "g" in
  Metrics.set g 2.5;
  Metrics.set g 1.25;
  Alcotest.(check (float 0.)) "gauge last-write-wins" 1.25
    (Metrics.gauge_value g);
  Metrics.reset m;
  Alcotest.(check int) "reset counter" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "reset gauge" 0. (Metrics.gauge_value g)

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "h" in
  (* Same bucketing as Trace: 0 -> bucket 0, 1 -> 1, {2,3} -> 2, 4..7 -> 3. *)
  List.iter (Metrics.observe h) [ 0; 1; 2; 3; 4; 7; 8 ];
  let b = Metrics.histogram_buckets h in
  Alcotest.(check (list int))
    "buckets 0..4" [ 1; 1; 2; 2; 1 ]
    [ b.(0); b.(1); b.(2); b.(3); b.(4) ]

let test_spans () =
  let m = Metrics.create () in
  let s = Metrics.span m "s" in
  Metrics.add_duration s 0.25;
  Metrics.add_duration s 0.75;
  let st = Metrics.span_stats s in
  Alcotest.(check int) "count" 2 st.Metrics.count;
  Alcotest.(check (float 1e-9)) "total" 1.0 st.Metrics.total_s;
  Alcotest.(check (float 1e-9)) "min" 0.25 st.Metrics.min_s;
  Alcotest.(check (float 1e-9)) "max" 0.75 st.Metrics.max_s;
  let r = Metrics.time s (fun () -> 7) in
  Alcotest.(check int) "time returns" 7 r;
  Alcotest.(check int) "time recorded" 3 (Metrics.span_stats s).Metrics.count

let test_disabled_noop () =
  let m = Metrics.disabled in
  Alcotest.(check bool) "disabled" false (Metrics.enabled m);
  let c = Metrics.counter m "c" in
  Metrics.incr ~by:100 c;
  Alcotest.(check int) "counter inert" 0 (Metrics.counter_value c);
  let h = Metrics.histogram m "h" in
  Metrics.observe h 5;
  Alcotest.(check int) "histogram inert" 0
    (Array.fold_left ( + ) 0 (Metrics.histogram_buckets h));
  let s = Metrics.span m "s" in
  Alcotest.(check int) "time still runs f" 9 (Metrics.time s (fun () -> 9));
  Alcotest.(check int) "span inert" 0 (Metrics.span_stats s).Metrics.count;
  Metrics.ingest_phases m ~prefix:"p" [ ("a", 3) ];
  Alcotest.(check bool) "to_json stays empty" true
    (J.equal (Metrics.to_json m)
       (J.Assoc
          [
            ("counters", J.Assoc []);
            ("gauges", J.Assoc []);
            ("histograms", J.Assoc []);
            ("spans", J.Assoc []);
          ]))

let test_ingest_and_json_determinism () =
  let build order =
    let m = Metrics.create () in
    List.iter (fun (p, r) -> Metrics.ingest_phases m ~prefix:"rounds" [ (p, r) ]) order;
    Metrics.set (Metrics.gauge m "g") 1.5;
    m
  in
  let a = build [ ("x", 1); ("y", 2) ] and b = build [ ("y", 2); ("x", 1) ] in
  Alcotest.(check string)
    "serialization independent of insertion order"
    (J.to_string (Metrics.to_json a))
    (J.to_string (Metrics.to_json b));
  let m = Metrics.create () in
  Metrics.ingest_phases m ~prefix:"rounds" [ ("a", 3); ("b", 4) ];
  Metrics.ingest_phases m ~prefix:"rounds" [ ("a", 2) ];
  Alcotest.(check int) "phase accumulates" 5
    (Metrics.counter_value (Metrics.counter m "rounds.a"));
  Alcotest.(check int) "total accumulates" 9
    (Metrics.counter_value (Metrics.counter m "rounds.total"))

(* ------------------------------------------- runtime integration *)

(* A fixed little communication pattern: a broadcast, an exchange ring, an
   analytic charge under a named phase. *)
let drive rt =
  let n = K.On_sim.n rt in
  ignore (K.On_sim.broadcast rt (Array.init n (fun v -> [| v |])));
  K.On_sim.with_phase rt "ring" (fun () ->
      ignore
        (K.On_sim.exchange rt
           (Array.init n (fun v -> [ ((v + 1) mod n, [| v; v * v |]) ]))));
  K.On_sim.charge ~phase:"analytic" rt 5

let test_attach_metrics_mirrors_ledger () =
  let m = Metrics.create () in
  let rt = K.On_sim.create ~sanitize:false (Clique.Sim.create 5) in
  K.On_sim.attach_metrics rt m;
  drive rt;
  Alcotest.(check int) "rounds mirrored" (K.On_sim.rounds rt)
    (Metrics.counter_value (Metrics.counter m "runtime.rounds"));
  Alcotest.(check int) "words mirrored" (K.On_sim.words rt)
    (Metrics.counter_value (Metrics.counter m "runtime.words"));
  Alcotest.(check int) "analytic phase attributed" 5
    (Metrics.counter_value (Metrics.counter m "phase.analytic.rounds"));
  Alcotest.(check int) "ring phase attributed"
    (K.On_sim.phase_rounds rt "ring")
    (Metrics.counter_value (Metrics.counter m "phase.ring.rounds"))

let test_export_metrics_snapshot () =
  let rt = K.On_sim.create ~sanitize:false (Clique.Sim.create 4) in
  drive rt;
  let m = Metrics.create () in
  K.On_sim.export_metrics rt m;
  Alcotest.(check int) "ledger total exported" (K.On_sim.rounds rt)
    (Metrics.counter_value (Metrics.counter m "ledger.clique.total"));
  Alcotest.(check (float 0.)) "words gauge"
    (float_of_int (K.On_sim.words rt))
    (Metrics.gauge_value (Metrics.gauge m "ledger.clique.words"))

(* The decisive property for the telemetry layer: attaching a registry to a
   sanitized runtime changes neither the rounds nor the sanitizer's shape /
   content transcript hashes — observability is invisible to the model. *)
let transcript rt =
  match K.On_sim.sanitizer rt with
  | Some s -> Runtime.Sanitize.transcript s
  | None -> Alcotest.fail "sanitizer expected"

let test_metrics_do_not_perturb_sanitizer () =
  let run with_metrics =
    let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 6) in
    if with_metrics then K.On_sim.attach_metrics rt (Metrics.create ());
    drive rt;
    (K.On_sim.rounds rt, K.On_sim.phases rt, transcript rt)
  in
  let r0, p0, t0 = run false in
  let r1, p1, t1 = run true in
  Alcotest.(check int) "rounds unchanged" r0 r1;
  Alcotest.(check (list (pair string int))) "phases unchanged" p0 p1;
  Alcotest.(check int64) "shape hash unchanged"
    t0.Runtime.Sanitize.shape_hash t1.Runtime.Sanitize.shape_hash;
  Alcotest.(check int64) "content hash unchanged"
    t0.Runtime.Sanitize.content_hash t1.Runtime.Sanitize.content_hash;
  Alcotest.(check int) "event count unchanged" t0.Runtime.Sanitize.events
    t1.Runtime.Sanitize.events

(* Registry work under CC_SANITIZE must also leave a charged-layer
   pipeline untouched: E1's seed instance reports the same total with a
   live registry ingesting its breakdown (the bench emission path). *)
let test_ingestion_under_sanitizer_parity () =
  Runtime.Sanitize.set_default (Some true);
  Fun.protect
    ~finally:(fun () -> Runtime.Sanitize.set_default None)
    (fun () ->
      let m = Metrics.create () in
      let r = Sparsify.Spectral.sparsify (Gen.connected_gnp ~seed:3L 40 0.5) in
      Metrics.ingest_phases m ~prefix:"rounds" r.Sparsify.Spectral.phase_rounds;
      Alcotest.(check int) "E1 seed parity with live registry" 84
        r.Sparsify.Spectral.rounds;
      Alcotest.(check int) "registry saw the whole breakdown" 84
        (Metrics.counter_value (Metrics.counter m "rounds.total")))

let suite =
  [
    Alcotest.test_case "json escaping" `Quick test_escaping;
    Alcotest.test_case "json round-trip" `Quick test_roundtrip;
    Alcotest.test_case "json parser accepts" `Quick test_parser_accepts;
    Alcotest.test_case "json parser rejects" `Quick test_parser_rejects;
    Alcotest.test_case "counters and gauges" `Quick test_counters_gauges;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "spans" `Quick test_spans;
    Alcotest.test_case "disabled registry is a no-op" `Quick
      test_disabled_noop;
    Alcotest.test_case "ingest_phases and deterministic json" `Quick
      test_ingest_and_json_determinism;
    Alcotest.test_case "attach_metrics mirrors the ledger" `Quick
      test_attach_metrics_mirrors_ledger;
    Alcotest.test_case "export_metrics snapshots the ledger" `Quick
      test_export_metrics_snapshot;
    Alcotest.test_case "metrics do not perturb sanitizer transcripts" `Quick
      test_metrics_do_not_perturb_sanitizer;
    Alcotest.test_case "ingestion under sanitizer keeps E1 parity" `Quick
      test_ingestion_under_sanitizer_parity;
  ]
