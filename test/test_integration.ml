(* End-to-end integration tests across the whole stack: every pipeline run
   with non-default backends, chained pipelines, and cross-checked round
   accounting. *)

module Graph_gen = Gen

let arc src dst cap cost = { Digraph.src; dst; cap; cost }

(* Theorem 1.2 with the full Theorem 1.1 solver in the inner loop — the
   maximum-fidelity configuration (slow, so small instance). *)
let test_maxflow_with_theorem11_backend () =
  let g = Graph_gen.layered_network ~seed:2L 2 3 4 in
  let t = Digraph.n g - 1 in
  let r =
    Maxflow_ipm.max_flow ~solver:(Electrical.Theorem_1_1 1e-8) g ~s:0 ~t
  in
  Alcotest.(check int) "exact" (Dinic.max_flow_value g ~s:0 ~t)
    r.Maxflow_ipm.value;
  (* The charged rounds must now include sparsifier construction every
     solve, so the ipm phase dominates massively. *)
  Alcotest.(check bool) "ipm phase dominates" true
    (List.assoc "ipm" r.Maxflow_ipm.phase_rounds > r.Maxflow_ipm.rounds / 2)

let test_maxflow_with_exact_backend () =
  let g = Graph_gen.random_network ~seed:3L 10 24 5 in
  let r = Maxflow_ipm.max_flow ~solver:Electrical.Exact g ~s:0 ~t:9 in
  Alcotest.(check int) "exact" (Dinic.max_flow_value g ~s:0 ~t:9)
    r.Maxflow_ipm.value

let test_mcf_with_exact_backend () =
  let g, sigma = Graph_gen.random_mcf ~seed:4L 9 20 6 in
  match
    (Mcf_ipm.solve ~solver:Electrical.Exact g ~sigma, Mcf_ssp.solve g ~sigma)
  with
  | Some r, Some oracle ->
    Alcotest.(check (float 1e-6)) "cost" oracle.Mcf_ssp.cost r.Mcf_ipm.cost
  | None, None -> ()
  | _ -> Alcotest.fail "feasibility disagreement"

(* Chained sparsification: the sparsifier of a sparsifier still
   preconditions the original graph. *)
let test_sparsifier_chain () =
  let g = Graph_gen.connected_gnp ~seed:5L 70 0.5 in
  let h1 = (Sparsify.Spectral.sparsify g).Sparsify.Spectral.sparsifier in
  let h2 = (Sparsify.Spectral.sparsify h1).Sparsify.Spectral.sparsifier in
  let kappa = Sparsify.Quality.relative_condition g h2 in
  Alcotest.(check bool)
    (Printf.sprintf "chained kappa=%f finite" kappa)
    true
    (Float.is_finite kappa);
  let n = Graph.n g in
  let b = Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1)) in
  let lh = Graph.laplacian_dense h2 in
  let x, st =
    Linalg.Chebyshev.solve_grounded
      ~apply_a:(Graph.apply_laplacian g)
      ~solve_b:(fun v -> Linalg.Dense.solve_grounded lh (Linalg.Vec.center v))
      ~kappa:(1.2 *. kappa) ~tol:1e-8 b
  in
  ignore x;
  Alcotest.(check bool) "chained preconditioner converges" true
    st.Linalg.Chebyshev.converged

(* Electrical flow backends agree. *)
let test_electrical_backends_agree () =
  let g = Graph_gen.connected_gnp ~seed:6L 25 0.3 in
  let b = Linalg.Vec.sub (Linalg.Vec.basis 25 3) (Linalg.Vec.basis 25 19) in
  let resistance _ = 1.5 in
  let exact =
    Electrical.compute ~solver:Electrical.Exact ~support:g ~resistance ~b ()
  in
  let cg =
    Electrical.compute ~solver:(Electrical.Cg 1e-12) ~support:g ~resistance ~b ()
  in
  let thm =
    Electrical.compute ~solver:(Electrical.Theorem_1_1 1e-9) ~support:g
      ~resistance ~b ()
  in
  Alcotest.(check bool) "cg = exact" true
    (Linalg.Vec.equal ~eps:1e-6 exact.Electrical.flow cg.Electrical.flow);
  Alcotest.(check bool) "thm11 = exact" true
    (Linalg.Vec.equal ~eps:1e-4 exact.Electrical.flow thm.Electrical.flow)

(* The solver's x actually solves downstream tasks: potentials-based s-t cut
   heuristic separates a barbell. *)
let test_solver_potentials_separate_barbell () =
  let g = Graph_gen.barbell 10 in
  let n = Graph.n g in
  let b = Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1)) in
  let x, _ = (fun r -> (r.Laplacian.Solver.x, r)) (Laplacian.Solver.solve ~eps:1e-8 g b) in
  (* Potentials inside the first clique must all exceed those in the second. *)
  let min_left = ref infinity and max_right = ref neg_infinity in
  for v = 0 to 9 do
    min_left := Float.min !min_left x.(v)
  done;
  for v = 10 to 19 do
    max_right := Float.max !max_right x.(v)
  done;
  Alcotest.(check bool) "potential gap across the bridge" true
    (!min_left > !max_right)

(* Cost-aware rounding end-to-end inside the MCF pipeline: build a fractional
   flow by hand on a graph where the wrong cycle direction is expensive. *)
let test_rounding_cost_rule_e2e () =
  let g =
    Digraph.create 6
      [
        arc 0 1 1 0; arc 1 5 1 0;
        (* cheap cycle pair *)
        arc 0 2 1 1; arc 2 5 1 1;
        (* expensive cycle pair *)
        arc 0 3 1 9; arc 3 5 1 9;
        (* middle *)
        arc 0 4 1 4; arc 4 5 1 4;
      ]
  in
  let f = Array.make 8 0.5 in
  let cost id = float_of_int (Digraph.arc g id).Digraph.cost in
  let r = Rounding.Flow_rounding.round ~cost g ~s:0 ~t:5 ~delta:0.5 f in
  let rf = r.Rounding.Flow_rounding.f in
  Alcotest.(check bool) "feasible" true (Flow.is_feasible g ~s:0 ~t:5 ~f:rf);
  Alcotest.(check bool) "value kept" true (Flow.value g ~s:0 ~f:rf >= 2. -. 1e-9);
  Alcotest.(check bool)
    (Printf.sprintf "cost %.1f <= fractional %.1f" (Flow.cost g rf)
       (Flow.cost g f))
    true
    (Flow.cost g rf <= Flow.cost g f +. 1e-9)

(* Orientation at scale inside rounding. *)
let test_rounding_large_network () =
  let g = Graph_gen.layered_network ~seed:7L 8 6 4 in
  let t = Digraph.n g - 1 in
  let f, v = Dinic.max_flow g ~s:0 ~t in
  let frac = Array.map (fun x -> 0.75 *. x) f in
  let items = Decompose.decompose g ~s:0 ~t frac in
  let q = Decompose.accumulate g (Decompose.quantize_paths ~delta:0.25 items) in
  let r = Rounding.Flow_rounding.round g ~s:0 ~t ~delta:0.25 q in
  Alcotest.(check bool) "integral" true
    (Flow.is_integral r.Rounding.Flow_rounding.f);
  Alcotest.(check bool) "feasible" true
    (Flow.is_feasible g ~s:0 ~t ~f:r.Rounding.Flow_rounding.f);
  Alcotest.(check bool) "value near optimum" true
    (Flow.value g ~s:0 ~f:r.Rounding.Flow_rounding.f >= 0.7 *. float_of_int v)

(* Core umbrella consistency. *)
let test_core_umbrella () =
  Alcotest.(check bool) "version" true (String.length Core.version > 0);
  let g = Core.Gen.connected_gnp ~seed:8L 30 0.3 in
  let b = Core.Vec.sub (Core.Vec.basis 30 0) (Core.Vec.basis 30 29) in
  let x, report = Core.solve_laplacian ~eps:1e-6 g b in
  Alcotest.(check bool) "solves" true
    (Core.Solver.error_in_l_norm g x b <= 1e-6);
  let total =
    List.fold_left (fun a (_, r) -> a + r) 0 report.Core.Solver.phase_rounds
  in
  Alcotest.(check int) "phase sum" report.Core.Solver.rounds total;
  let reff = Core.effective_resistance g 0 29 in
  Alcotest.(check bool) "effective resistance positive" true (reff > 0.);
  (* Consistent with the solver's potentials. *)
  Alcotest.(check bool) "consistent with solve" true
    (Float.abs (reff -. (x.(0) -. x.(29))) < 1e-3)

let test_core_min_cost_max_flow () =
  let g = Graph_gen.unit_bipartite ~seed:9L 4 0.6 in
  let s = 0 and t = Digraph.n g - 1 in
  match Core.min_cost_max_flow g ~s ~t with
  | None -> Alcotest.fail "feasible"
  | Some (r, _) ->
    let _, v_oracle, _ = Mcf_ssp.solve_max_flow_min_cost g ~s ~t in
    Alcotest.(check int) "max value" v_oracle
      (int_of_float (Float.round (Flow.value g ~s ~f:r.Mcf_ipm.f)))

(* MST of a sparsifier still spans. *)
let test_mst_of_sparsifier () =
  let g = Graph_gen.connected_gnp ~seed:10L 50 0.4 in
  let h = (Core.spectral_sparsifier g).Sparsify.Spectral.sparsifier in
  let mst = Core.minimum_spanning_tree h in
  Alcotest.(check int) "spans" 49 (List.length mst.Clique.Boruvka.edges)

(* Round-count parity with the pre-runtime seed: after the functorized
   Runtime refactor every experiment must report exactly the same totals
   as the original per-module ledgers, and the per-phase breakdown must
   always sum to the total. The constants below are the seed bench
   outputs for one representative instance per experiment family. *)
let phase_sum ps = List.fold_left (fun a (_, r) -> a + r) 0 ps

let check_total_and_phases name expected rounds phase_rounds =
  Alcotest.(check int) (name ^ " rounds match seed") expected rounds;
  Alcotest.(check int) (name ^ " phases sum to total") rounds
    (phase_sum phase_rounds)

let test_seed_round_parity_sparsify () =
  let r =
    Sparsify.Spectral.sparsify (Graph_gen.connected_gnp ~seed:3L 40 0.5)
  in
  check_total_and_phases "E1 n=40 u=1" 84 r.Sparsify.Spectral.rounds
    r.Sparsify.Spectral.phase_rounds;
  let r =
    Sparsify.Spectral.sparsify (Graph_gen.weighted_gnp ~seed:3L 60 0.5 16)
  in
  check_total_and_phases "E1 n=60 u=16" 251 r.Sparsify.Spectral.rounds
    r.Sparsify.Spectral.phase_rounds

let test_seed_round_parity_solver () =
  let n = 30 in
  let g = Graph_gen.connected_gnp ~seed:7L n 0.3 in
  let b = Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1)) in
  let r = Laplacian.Solver.solve ~eps:1e-6 g b in
  check_total_and_phases "E2 n=30" 157 r.Laplacian.Solver.rounds
    r.Laplacian.Solver.phase_rounds

let test_seed_round_parity_orientation () =
  List.iter
    (fun (n, expected) ->
      let g = Graph_gen.cycle_union ~seed:5L n (max 3 (n / 16)) in
      let r = Euler.Orientation.orient g in
      check_total_and_phases
        (Printf.sprintf "E3 n=%d" n)
        expected r.Euler.Orientation.rounds r.Euler.Orientation.phase_rounds)
    [ (64, 264); (256, 358) ]

let test_seed_round_parity_rounding () =
  let g = Graph_gen.layered_network ~seed:11L 4 4 6 in
  let t = Digraph.n g - 1 in
  let f, _ = Dinic.max_flow g ~s:0 ~t in
  let delta = 0.25 in
  let frac = Array.map (fun x -> 2. /. 3. *. x) f in
  let items = Decompose.decompose g ~s:0 ~t frac in
  let q = Decompose.accumulate g (Decompose.quantize_paths ~delta items) in
  let r = Rounding.Flow_rounding.round g ~s:0 ~t ~delta q in
  check_total_and_phases "E4 k=2" 304 r.Rounding.Flow_rounding.rounds
    r.Rounding.Flow_rounding.phase_rounds

let test_seed_round_parity_maxflow () =
  let g = Graph_gen.layered_network ~seed:13L 2 4 8 in
  let r = Maxflow_ipm.max_flow g ~s:0 ~t:(Digraph.n g - 1) in
  check_total_and_phases "E5 layers=2" 1931 r.Maxflow_ipm.rounds
    r.Maxflow_ipm.phase_rounds

let test_seed_round_parity_mcf () =
  let g, sigma = Graph_gen.random_mcf ~seed:17L 8 16 10 in
  match Mcf_ipm.solve g ~sigma with
  | None -> Alcotest.fail "seed instance must be feasible"
  | Some r ->
    check_total_and_phases "E6 m=16" 1201 r.Mcf_ipm.rounds
      r.Mcf_ipm.phase_rounds

(* Every experiment family runs clean under the dynamic sanitizer and
   reports the exact same totals: enabling the checks must never change
   the computation. E7/E7b are closed-form reference curves with no
   communication; E8's ablations re-run the E1/E2 machinery with
   non-default backends, represented here by the bucket-vs-BSS pair and
   the CG baseline. The bench binary covers the full E1-E8 surface under
   CC_SANITIZE=1 in CI. *)
let with_sanitizer f =
  Runtime.Sanitize.set_default (Some true);
  Fun.protect ~finally:(fun () -> Runtime.Sanitize.set_default None) f

let test_families_under_sanitizer () =
  with_sanitizer (fun () ->
      (* E1: sparsifier. *)
      let r =
        Sparsify.Spectral.sparsify (Graph_gen.connected_gnp ~seed:3L 40 0.5)
      in
      check_total_and_phases "E1 sanitized" 84 r.Sparsify.Spectral.rounds
        r.Sparsify.Spectral.phase_rounds;
      (* E2: solver. *)
      let n = 30 in
      let g = Graph_gen.connected_gnp ~seed:7L n 0.3 in
      let b =
        Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1))
      in
      let r = Laplacian.Solver.solve ~eps:1e-6 g b in
      check_total_and_phases "E2 sanitized" 157 r.Laplacian.Solver.rounds
        r.Laplacian.Solver.phase_rounds;
      (* E3: Euler orientation. *)
      let r = Euler.Orientation.orient (Graph_gen.cycle_union ~seed:5L 64 4) in
      check_total_and_phases "E3 sanitized" 264 r.Euler.Orientation.rounds
        r.Euler.Orientation.phase_rounds;
      (* E4: flow rounding. *)
      let g = Graph_gen.layered_network ~seed:11L 4 4 6 in
      let t = Digraph.n g - 1 in
      let f, _ = Dinic.max_flow g ~s:0 ~t in
      let delta = 0.25 in
      let frac = Array.map (fun x -> 2. /. 3. *. x) f in
      let items = Decompose.decompose g ~s:0 ~t frac in
      let q = Decompose.accumulate g (Decompose.quantize_paths ~delta items) in
      let r = Rounding.Flow_rounding.round g ~s:0 ~t ~delta q in
      check_total_and_phases "E4 sanitized" 304 r.Rounding.Flow_rounding.rounds
        r.Rounding.Flow_rounding.phase_rounds;
      (* E5: max flow IPM. *)
      let g = Graph_gen.layered_network ~seed:13L 2 4 8 in
      let r = Maxflow_ipm.max_flow g ~s:0 ~t:(Digraph.n g - 1) in
      check_total_and_phases "E5 sanitized" 1931 r.Maxflow_ipm.rounds
        r.Maxflow_ipm.phase_rounds;
      (* E6: min-cost flow IPM. *)
      let g, sigma = Graph_gen.random_mcf ~seed:17L 8 16 10 in
      (match Mcf_ipm.solve g ~sigma with
      | None -> Alcotest.fail "seed instance must be feasible"
      | Some r ->
        check_total_and_phases "E6 sanitized" 1201 r.Mcf_ipm.rounds
          r.Mcf_ipm.phase_rounds);
      (* E8-style ablations: alternate sparsifier backend and the plain-CG
         solver baseline also run clean under the checks. *)
      let g = Graph_gen.connected_gnp ~seed:29L 36 0.5 in
      ignore (Sparsify.Bss.sparsify ~d:4 g);
      let n = Graph.n g in
      let b =
        Linalg.Vec.sub (Linalg.Vec.basis n 0) (Linalg.Vec.basis n (n - 1))
      in
      ignore (Laplacian.Solver.solve_cg_baseline ~eps:1e-8 g b))

(* Determinism: the whole Theorem 1.2 pipeline is bit-for-bit repeatable. *)
let test_pipeline_determinism () =
  let g = Graph_gen.layered_network ~seed:11L 3 3 5 in
  let t = Digraph.n g - 1 in
  let r1 = Maxflow_ipm.max_flow g ~s:0 ~t in
  let r2 = Maxflow_ipm.max_flow g ~s:0 ~t in
  Alcotest.(check bool) "same flow vector" true
    (r1.Maxflow_ipm.f = r2.Maxflow_ipm.f);
  Alcotest.(check int) "same rounds" r1.Maxflow_ipm.rounds r2.Maxflow_ipm.rounds

let suite =
  [
    Alcotest.test_case "maxflow with Theorem 1.1 backend" `Slow
      test_maxflow_with_theorem11_backend;
    Alcotest.test_case "maxflow with exact backend" `Quick
      test_maxflow_with_exact_backend;
    Alcotest.test_case "mcf with exact backend" `Quick
      test_mcf_with_exact_backend;
    Alcotest.test_case "sparsifier chain" `Quick test_sparsifier_chain;
    Alcotest.test_case "electrical backends agree" `Quick
      test_electrical_backends_agree;
    Alcotest.test_case "solver potentials separate barbell" `Quick
      test_solver_potentials_separate_barbell;
    Alcotest.test_case "rounding cost rule e2e" `Quick
      test_rounding_cost_rule_e2e;
    Alcotest.test_case "rounding large network" `Quick
      test_rounding_large_network;
    Alcotest.test_case "core umbrella" `Quick test_core_umbrella;
    Alcotest.test_case "core min-cost max-flow" `Quick
      test_core_min_cost_max_flow;
    Alcotest.test_case "mst of sparsifier" `Quick test_mst_of_sparsifier;
    Alcotest.test_case "pipeline determinism" `Quick test_pipeline_determinism;
    Alcotest.test_case "seed round parity: sparsifier (E1)" `Quick
      test_seed_round_parity_sparsify;
    Alcotest.test_case "seed round parity: solver (E2)" `Quick
      test_seed_round_parity_solver;
    Alcotest.test_case "seed round parity: orientation (E3)" `Quick
      test_seed_round_parity_orientation;
    Alcotest.test_case "seed round parity: rounding (E4)" `Quick
      test_seed_round_parity_rounding;
    Alcotest.test_case "seed round parity: maxflow (E5)" `Quick
      test_seed_round_parity_maxflow;
    Alcotest.test_case "seed round parity: mcf (E6)" `Quick
      test_seed_round_parity_mcf;
    Alcotest.test_case "experiment families under sanitizer" `Quick
      test_families_under_sanitizer;
  ]
