(* Unit and property tests for the linear-algebra substrate. *)

(* [Gen] collides with [QCheck.Gen] inside the property block. *)
module Graph_gen = Gen

let approx ?(eps = 1e-8) a b = Float.abs (a -. b) <= eps

let check_float name eps expected actual =
  Alcotest.(check (float eps)) name expected actual

(* ------------------------------------------------------------------ Vec *)

let test_vec_basic () =
  let x = Linalg.Vec.of_list [ 1.; 2.; 3. ] in
  let y = Linalg.Vec.of_list [ 4.; 5.; 6. ] in
  check_float "dot" 1e-12 32. (Linalg.Vec.dot x y);
  check_float "norm2" 1e-12 (sqrt 14.) (Linalg.Vec.norm2 x);
  Alcotest.(check bool)
    "add" true
    (Linalg.Vec.equal (Linalg.Vec.add x y) (Linalg.Vec.of_list [ 5.; 7.; 9. ]));
  Alcotest.(check bool)
    "axpy" true
    (Linalg.Vec.equal
       (Linalg.Vec.axpy 2. x y)
       (Linalg.Vec.of_list [ 6.; 9.; 12. ]));
  check_float "norm_inf" 1e-12 3. (Linalg.Vec.norm_inf x)

let test_vec_center () =
  let x = Linalg.Vec.of_list [ 1.; 2.; 3.; 6. ] in
  let c = Linalg.Vec.center x in
  check_float "mean removed" 1e-12 0. (Linalg.Vec.sum c)

let test_vec_mismatch () =
  Alcotest.check_raises "dot mismatch"
    (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Linalg.Vec.dot [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_vec_basis () =
  let e1 = Linalg.Vec.basis 4 1 in
  check_float "basis entry" 1e-15 1. e1.(1);
  check_float "basis sum" 1e-15 1. (Linalg.Vec.sum e1)

(* ---------------------------------------------------------------- Dense *)

let test_cholesky_roundtrip () =
  (* SPD matrix: A = Mᵀ M + I for a fixed M *)
  let n = 6 in
  let m =
    Linalg.Dense.init n (fun i j ->
        float_of_int (((i * 7) + (j * 3)) mod 5) /. 5.)
  in
  let a =
    Linalg.Dense.add (Linalg.Dense.mul (Linalg.Dense.transpose m) m)
      (Linalg.Dense.identity n)
  in
  let b = Linalg.Vec.init n (fun i -> float_of_int (i + 1)) in
  let x = Linalg.Dense.solve_spd a b in
  let r = Linalg.Vec.sub (Linalg.Dense.mul_vec a x) b in
  Alcotest.(check bool) "residual small" true (Linalg.Vec.norm2 r < 1e-9)

let test_cholesky_rejects_indefinite () =
  let a = [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  (* eigenvalues 3, −1 *)
  Alcotest.(check bool)
    "raises" true
    (try
       ignore (Linalg.Dense.cholesky a);
       false
     with Failure _ -> true)

let test_inverse_spd () =
  let a = [| [| 4.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 2. |] |] in
  let inv = Linalg.Dense.inverse_spd a in
  let prod = Linalg.Dense.mul a inv in
  let id = Linalg.Dense.identity 3 in
  let err = ref 0. in
  for i = 0 to 2 do
    for j = 0 to 2 do
      err := Float.max !err (Float.abs (prod.(i).(j) -. id.(i).(j)))
    done
  done;
  Alcotest.(check bool) "A·A⁻¹ = I" true (!err < 1e-10)

let test_solve_grounded () =
  (* Path graph Laplacian on 4 vertices; solve L x = b with b ⊥ 1. *)
  let g = Gen.path 4 in
  let l = Graph.laplacian_dense g in
  let b = Linalg.Vec.of_list [ 1.; 0.; 0.; -1. ] in
  let x = Linalg.Dense.solve_grounded l b in
  let r = Linalg.Vec.sub (Linalg.Dense.mul_vec l x) b in
  Alcotest.(check bool) "Lx = b" true (Linalg.Vec.norm2 r < 1e-8);
  check_float "x centered" 1e-9 0. (Linalg.Vec.sum x)

let test_power_iteration () =
  let a = [| [| 2.; 0. |]; [| 0.; 5. |] |] in
  let lambda, v = Linalg.Dense.power_iteration (Linalg.Dense.mul_vec a) 2 in
  check_float "dominant eigenvalue" 1e-6 5. lambda;
  Alcotest.(check bool) "eigvec aligned" true (Float.abs v.(1) > 0.99)

let test_eig_bounds () =
  let a = [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  (* eigenvalues 1 and 3 *)
  let lo, hi = Linalg.Dense.eig_bounds_spd a in
  Alcotest.(check bool) "lo <= 1" true (lo <= 1. +. 1e-6);
  Alcotest.(check bool) "lo near 1" true (lo > 0.9);
  Alcotest.(check bool) "hi >= 3" true (hi >= 3. -. 1e-9)

(* ------------------------------------------------------------------ Csr *)

let test_csr_build () =
  let a =
    Linalg.Csr.of_triplets ~rows:3 ~cols:3
      [ (0, 0, 1.); (0, 2, 2.); (2, 1, -1.); (0, 2, 3.); (1, 1, 0.) ]
  in
  Alcotest.(check int) "nnz merges dups, drops zeros" 3 (Linalg.Csr.nnz a);
  check_float "merged value" 1e-12 5. (Linalg.Csr.get a 0 2);
  check_float "absent is 0" 1e-12 0. (Linalg.Csr.get a 1 1)

let test_csr_matvec () =
  let a =
    Linalg.Csr.of_triplets ~rows:2 ~cols:3
      [ (0, 0, 1.); (0, 1, 2.); (1, 2, 4.) ]
  in
  let y = Linalg.Csr.mul_vec a [| 1.; 1.; 1. |] in
  Alcotest.(check bool)
    "Ax" true
    (Linalg.Vec.equal y (Linalg.Vec.of_list [ 3.; 4. ]));
  let z = Linalg.Csr.mul_vec_transpose a [| 1.; 1. |] in
  Alcotest.(check bool)
    "Aᵀx" true
    (Linalg.Vec.equal z (Linalg.Vec.of_list [ 1.; 2.; 4. ]))

let test_csr_transpose_dense_roundtrip () =
  let d = [| [| 0.; 1.; 0. |]; [| 2.; 0.; 3. |]; [| 0.; 0.; 4. |] |] in
  let a = Linalg.Csr.of_dense d in
  let back = Linalg.Csr.to_dense (Linalg.Csr.transpose (Linalg.Csr.transpose a)) in
  Alcotest.(check bool)
    "transpose involution" true
    (back = d)

let test_csr_laplacian_symmetry () =
  let g = Gen.connected_gnp ~seed:7L 20 0.2 in
  let l = Graph.laplacian g in
  Alcotest.(check bool) "symmetric" true (Linalg.Csr.is_symmetric l);
  (* Row sums of a Laplacian vanish. *)
  let ones = Linalg.Vec.constant 20 1. in
  let y = Linalg.Csr.mul_vec l ones in
  Alcotest.(check bool) "L·1 = 0" true (Linalg.Vec.norm2 y < 1e-9)

(* ------------------------------------------------------------------- Cg *)

let test_cg_solves_spd () =
  let a = [| [| 4.; 1.; 0. |]; [| 1.; 3.; 1. |]; [| 0.; 1.; 2. |] |] in
  let b = [| 1.; 2.; 3. |] in
  let x, st = Linalg.Cg.solve (Linalg.Dense.mul_vec a) b in
  Alcotest.(check bool) "converged" true st.Linalg.Cg.converged;
  let r = Linalg.Vec.sub (Linalg.Dense.mul_vec a x) b in
  Alcotest.(check bool) "residual" true (Linalg.Vec.norm2 r < 1e-8)

let test_cg_grounded_laplacian () =
  let g = Gen.connected_gnp ~seed:3L 30 0.15 in
  let b = Linalg.Vec.center (Linalg.Vec.init 30 (fun i -> float_of_int (i mod 5))) in
  let x, st = Linalg.Cg.solve_grounded (Graph.apply_laplacian g) b in
  Alcotest.(check bool) "converged" true st.Linalg.Cg.converged;
  let r = Linalg.Vec.sub (Graph.apply_laplacian g x) b in
  Alcotest.(check bool) "residual" true (Linalg.Vec.norm2 r < 1e-7)

(* ------------------------------------------------------------ Chebyshev *)

let test_chebyshev_identity_preconditioner () =
  (* With B = A the iteration converges immediately (κ = 1 ⇒ spectrum
     collapses to a point). *)
  let a = [| [| 2.; 0. |]; [| 0.; 2. |] |] in
  let x, st =
    Linalg.Chebyshev.solve
      ~apply_a:(Linalg.Dense.mul_vec a)
      ~solve_b:(fun v -> Linalg.Vec.scale 0.5 v)
      ~kappa:1.0 [| 2.; 4. |]
  in
  Alcotest.(check bool) "converged" true st.Linalg.Chebyshev.converged;
  Alcotest.(check bool)
    "solution" true
    (Linalg.Vec.equal ~eps:1e-8 x (Linalg.Vec.of_list [ 1.; 2. ]))

let test_chebyshev_laplacian_with_sparsifier_identity () =
  (* Solve L x = b with the exact grounded solve as preconditioner. *)
  let g = Gen.connected_gnp ~seed:11L 25 0.2 in
  let l = Graph.laplacian_dense g in
  let b =
    Linalg.Vec.center (Linalg.Vec.init 25 (fun i -> float_of_int ((i * 3) mod 7)))
  in
  let x, st =
    Linalg.Chebyshev.solve_grounded
      ~apply_a:(Graph.apply_laplacian g)
      ~solve_b:(fun v -> Linalg.Dense.solve_grounded l (Linalg.Vec.center v))
      ~kappa:1.0 ~tol:1e-10 b
  in
  Alcotest.(check bool) "converged" true st.Linalg.Chebyshev.converged;
  let r = Linalg.Vec.sub (Graph.apply_laplacian g x) b in
  Alcotest.(check bool) "residual" true (Linalg.Vec.norm2 r < 1e-7)

let test_chebyshev_iteration_bound_scaling () =
  (* Iteration bound grows like √κ·log(1/ε). *)
  let b1 = Linalg.Chebyshev.iteration_bound ~kappa:4. ~eps:1e-6 in
  let b2 = Linalg.Chebyshev.iteration_bound ~kappa:16. ~eps:1e-6 in
  Alcotest.(check bool) "doubling κ quadruples... doubles bound" true
    (float_of_int b2 /. float_of_int b1 < 2.3
    && float_of_int b2 /. float_of_int b1 > 1.7);
  let b3 = Linalg.Chebyshev.iteration_bound ~kappa:4. ~eps:1e-12 in
  Alcotest.(check bool) "eps scaling" true
    (float_of_int b3 /. float_of_int b1 < 2.2
    && float_of_int b3 /. float_of_int b1 > 1.6)

(* --------------------------------------------------------------- QCheck *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"vec add commutative" ~count:100
      (pair (list_of_size (Gen.return 8) (float_bound_exclusive 100.))
         (list_of_size (Gen.return 8) (float_bound_exclusive 100.)))
      (fun (xs, ys) ->
        let x = Linalg.Vec.of_list xs and y = Linalg.Vec.of_list ys in
        Linalg.Vec.equal (Linalg.Vec.add x y) (Linalg.Vec.add y x));
    Test.make ~name:"dot Cauchy-Schwarz" ~count:100
      (pair (list_of_size (Gen.return 8) (float_bound_exclusive 100.))
         (list_of_size (Gen.return 8) (float_bound_exclusive 100.)))
      (fun (xs, ys) ->
        let x = Linalg.Vec.of_list xs and y = Linalg.Vec.of_list ys in
        Float.abs (Linalg.Vec.dot x y)
        <= (Linalg.Vec.norm2 x *. Linalg.Vec.norm2 y) +. 1e-6);
    Test.make ~name:"laplacian PSD on random graphs" ~count:50
      (pair small_nat (list_of_size (Gen.return 12) (float_bound_exclusive 10.)))
      (fun (seed, xs) ->
        let g = Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 1)) 12 0.3 in
        let x = Linalg.Vec.of_list xs in
        Graph.quadratic_form g x >= -1e-9);
    Test.make ~name:"csr matvec matches dense" ~count:50
      small_nat
      (fun seed ->
        let g = Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 100)) 10 0.4 in
        let l = Graph.laplacian g in
        let d = Graph.laplacian_dense g in
        let x = Linalg.Vec.init 10 (fun i -> float_of_int ((i + seed) mod 4)) in
        Linalg.Vec.equal ~eps:1e-9 (Linalg.Csr.mul_vec l x)
          (Linalg.Dense.mul_vec d x));
  ]

let suite =
  [
    Alcotest.test_case "vec basic ops" `Quick test_vec_basic;
    Alcotest.test_case "vec center" `Quick test_vec_center;
    Alcotest.test_case "vec dim mismatch" `Quick test_vec_mismatch;
    Alcotest.test_case "vec basis" `Quick test_vec_basis;
    Alcotest.test_case "cholesky roundtrip" `Quick test_cholesky_roundtrip;
    Alcotest.test_case "cholesky rejects indefinite" `Quick
      test_cholesky_rejects_indefinite;
    Alcotest.test_case "inverse spd" `Quick test_inverse_spd;
    Alcotest.test_case "grounded laplacian solve" `Quick test_solve_grounded;
    Alcotest.test_case "power iteration" `Quick test_power_iteration;
    Alcotest.test_case "eig bounds" `Quick test_eig_bounds;
    Alcotest.test_case "csr build" `Quick test_csr_build;
    Alcotest.test_case "csr matvec" `Quick test_csr_matvec;
    Alcotest.test_case "csr transpose roundtrip" `Quick
      test_csr_transpose_dense_roundtrip;
    Alcotest.test_case "laplacian csr symmetric" `Quick
      test_csr_laplacian_symmetry;
    Alcotest.test_case "cg solves spd" `Quick test_cg_solves_spd;
    Alcotest.test_case "cg grounded laplacian" `Quick test_cg_grounded_laplacian;
    Alcotest.test_case "chebyshev identity preconditioner" `Quick
      test_chebyshev_identity_preconditioner;
    Alcotest.test_case "chebyshev exact preconditioner" `Quick
      test_chebyshev_laplacian_with_sparsifier_identity;
    Alcotest.test_case "chebyshev iteration bound scaling" `Quick
      test_chebyshev_iteration_bound_scaling;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests



(* --------------------------------------------------- additional coverage *)

let test_vec_scale_zero () =
  let x = Linalg.Vec.of_list [ 1.; -2.; 3. ] in
  Alcotest.(check bool) "zeroed" true
    (Linalg.Vec.equal (Linalg.Vec.scale 0. x) (Linalg.Vec.create 3))

let test_vec_normalize_zero_vector () =
  let z = Linalg.Vec.create 4 in
  Alcotest.(check bool) "unchanged" true
    (Linalg.Vec.equal (Linalg.Vec.normalize z) z)

let test_vec_dist2 () =
  let x = Linalg.Vec.of_list [ 0.; 0. ] and y = Linalg.Vec.of_list [ 3.; 4. ] in
  Alcotest.(check (float 1e-12)) "3-4-5" 5. (Linalg.Vec.dist2 x y)

let test_vec_map2 () =
  let x = Linalg.Vec.of_list [ 1.; 2. ] and y = Linalg.Vec.of_list [ 3.; 4. ] in
  Alcotest.(check bool) "pointwise product" true
    (Linalg.Vec.equal (Linalg.Vec.map2 ( *. ) x y) (Linalg.Vec.of_list [ 3.; 8. ]))

let test_dense_transpose_mul () =
  let a = [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let at = Linalg.Dense.transpose a in
  Alcotest.(check (float 1e-12)) "transposed entry" 3. at.(0).(1);
  let prod = Linalg.Dense.mul a (Linalg.Dense.identity 2) in
  Alcotest.(check bool) "A·I = A" true (prod = a)

let test_dense_symmetry_check () =
  Alcotest.(check bool) "symmetric" true
    (Linalg.Dense.is_symmetric [| [| 1.; 2. |]; [| 2.; 1. |] |]);
  Alcotest.(check bool) "asymmetric" false
    (Linalg.Dense.is_symmetric [| [| 1.; 2. |]; [| 3.; 1. |] |])

let test_solve_grounded_tiny () =
  (* n = 1: L = [0]; only solution is x = 0. *)
  Alcotest.(check bool) "singleton" true
    (Linalg.Dense.solve_grounded [| [| 0. |] |] [| 0. |] = [| 0. |])

let test_cholesky_shift_rescues_psd () =
  (* A singular PSD matrix factors once shifted. *)
  let a = [| [| 1.; -1. |]; [| -1.; 1. |] |] in
  let l = Linalg.Dense.cholesky ~shift:1e-9 a in
  Alcotest.(check bool) "factored" true (Array.length l = 2)

let test_cg_max_iters_respected () =
  let a = Gen.expander 40 6 in
  let b = Linalg.Vec.center (Linalg.Vec.basis 40 0) in
  let _, st =
    Linalg.Cg.solve ~max_iters:3 (Graph.apply_laplacian a) b
  in
  Alcotest.(check bool) "stopped at cap" true (st.Linalg.Cg.iterations <= 3)

let test_chebyshev_respects_max_iters () =
  let a = [| [| 3.; 1. |]; [| 1.; 2. |] |] in
  let _, st =
    Linalg.Chebyshev.solve ~max_iters:2 ~tol:1e-30
      ~apply_a:(Linalg.Dense.mul_vec a)
      ~solve_b:(fun v -> v)
      ~kappa:10. [| 1.; 1. |]
  in
  Alcotest.(check int) "two iterations" 2 st.Linalg.Chebyshev.iterations

let test_chebyshev_operator_property () =
  (* Theorem 2.2 property 1: Z ≈ A† as an operator — apply to several
     right-hand sides and compare with the true pseudoinverse. *)
  let g = Graph_gen.connected_gnp ~seed:51L 20 0.35 in
  let l = Graph.laplacian_dense g in
  let solve_exact b = Linalg.Dense.solve_grounded l b in
  List.iter
    (fun i ->
      let b = Linalg.Vec.center (Linalg.Vec.basis 20 i) in
      let z_b, _ =
        Linalg.Chebyshev.solve_grounded
          ~apply_a:(Graph.apply_laplacian g)
          ~solve_b:solve_exact ~kappa:1.0 ~tol:1e-10 b
      in
      let x = solve_exact b in
      if not (Linalg.Vec.equal ~eps:1e-6 z_b x) then
        Alcotest.failf "operator deviates on basis vector %d" i)
    [ 0; 5; 12; 19 ]

let more_qcheck =
  let open QCheck in
  [
    Test.make ~name:"scale distributes over add" ~count:80
      (triple (float_bound_exclusive 10.)
         (list_of_size (Gen.return 6) (float_bound_exclusive 10.))
         (list_of_size (Gen.return 6) (float_bound_exclusive 10.)))
      (fun (a, xs, ys) ->
        let x = Linalg.Vec.of_list xs and y = Linalg.Vec.of_list ys in
        Linalg.Vec.equal ~eps:1e-6
          (Linalg.Vec.scale a (Linalg.Vec.add x y))
          (Linalg.Vec.add (Linalg.Vec.scale a x) (Linalg.Vec.scale a y)));
    Test.make ~name:"center is idempotent" ~count:80
      (list_of_size (Gen.return 7) (float_bound_exclusive 50.))
      (fun xs ->
        let x = Linalg.Vec.of_list xs in
        Linalg.Vec.equal ~eps:1e-9 (Linalg.Vec.center x)
          (Linalg.Vec.center (Linalg.Vec.center x)));
    Test.make ~name:"csr add = dense add" ~count:40 small_nat
      (fun seed ->
        let g1 = Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 300)) 8 0.4 in
        let g2 = Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 301)) 8 0.4 in
        let a = Graph.laplacian g1 and b = Graph.laplacian g2 in
        Linalg.Csr.to_dense (Linalg.Csr.add a b)
        = Linalg.Dense.add (Graph.laplacian_dense g1) (Graph.laplacian_dense g2));
    Test.make ~name:"csr scale commutes with matvec" ~count:40 small_nat
      (fun seed ->
        let g = Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 302)) 9 0.4 in
        let a = Graph.laplacian g in
        let x = Linalg.Vec.init 9 (fun i -> float_of_int ((i * 3) mod 5)) in
        Linalg.Vec.equal ~eps:1e-9
          (Linalg.Csr.mul_vec (Linalg.Csr.scale 2.5 a) x)
          (Linalg.Vec.scale 2.5 (Linalg.Csr.mul_vec a x)));
    Test.make ~name:"grounded solve really solves" ~count:30 small_nat
      (fun seed ->
        let g = Graph_gen.connected_gnp ~seed:(Int64.of_int (seed + 303)) 10 0.4 in
        let b = Linalg.Vec.center (Linalg.Vec.init 10 (fun i -> float_of_int (seed + i))) in
        let x = Linalg.Dense.solve_grounded (Graph.laplacian_dense g) b in
        Linalg.Vec.dist2 (Graph.apply_laplacian g x) b < 1e-6);
  ]

let suite =
  suite
  @ [
      Alcotest.test_case "vec scale zero" `Quick test_vec_scale_zero;
      Alcotest.test_case "vec normalize zero" `Quick
        test_vec_normalize_zero_vector;
      Alcotest.test_case "vec dist2" `Quick test_vec_dist2;
      Alcotest.test_case "vec map2" `Quick test_vec_map2;
      Alcotest.test_case "dense transpose/mul" `Quick test_dense_transpose_mul;
      Alcotest.test_case "dense symmetry check" `Quick test_dense_symmetry_check;
      Alcotest.test_case "grounded solve singleton" `Quick
        test_solve_grounded_tiny;
      Alcotest.test_case "cholesky shift" `Quick test_cholesky_shift_rescues_psd;
      Alcotest.test_case "cg max iters" `Quick test_cg_max_iters_respected;
      Alcotest.test_case "chebyshev max iters" `Quick
        test_chebyshev_respects_max_iters;
      Alcotest.test_case "chebyshev operator property" `Quick
        test_chebyshev_operator_property;
    ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) more_qcheck

(* ------------------------------------- zero-allocation workspace kernels *)

(* Verbatim copies of the pre-workspace (allocating) CG and Chebyshev
   implementations: the differential oracle pinning the refactored
   kernels to bit-identical arithmetic on real instances. *)
module Seed_cg = struct
  let solve ?max_iters ?(tol = 1e-10) ?x0 apply b =
    let open Linalg in
    let n = Vec.dim b in
    let max_iters = match max_iters with Some k -> k | None -> 10 * n in
    let x = match x0 with Some x -> Vec.copy x | None -> Vec.create n in
    let r = Vec.sub b (apply x) in
    let p = Vec.copy r in
    let rs = ref (Vec.dot r r) in
    let nb = Vec.norm2 b in
    let target = tol *. Float.max nb 1e-300 in
    let iters = ref 0 in
    (try
       while !iters < max_iters && sqrt !rs > target do
         let ap = apply p in
         let pap = Vec.dot p ap in
         if pap <= 0. then raise Exit;
         let alpha = !rs /. pap in
         Vec.axpy_inplace alpha p x;
         Vec.axpy_inplace (-.alpha) ap r;
         let rs' = Vec.dot r r in
         let beta = rs' /. !rs in
         for i = 0 to n - 1 do
           p.(i) <- r.(i) +. (beta *. p.(i))
         done;
         rs := rs';
         incr iters
       done
     with Exit -> ());
    let residual = sqrt !rs in
    ( x,
      {
        Linalg.Cg.iterations = !iters;
        residual;
        converged = residual <= target;
      } )
end

module Seed_cheb = struct
  let solve ?max_iters ?(tol = 1e-10) ~apply_a ~solve_b ~kappa b =
    let open Linalg in
    let n = Vec.dim b in
    let max_iters =
      match max_iters with
      | Some k -> k
      | None -> Chebyshev.iteration_bound ~kappa ~eps:tol
    in
    let lmin = 1. /. Float.max kappa 1. in
    let lmax = 1. in
    let theta = (lmax +. lmin) /. 2. in
    let delta = (lmax -. lmin) /. 2. in
    let sigma1 = theta /. delta in
    let x = Vec.create n in
    let r = Vec.copy b in
    let nb = Float.max (Vec.norm2 b) 1e-300 in
    let z = solve_b r in
    let d = Vec.scale (1. /. theta) z in
    let rho_prev = ref (1. /. sigma1) in
    let iters = ref 0 in
    let residual = ref (Vec.norm2 r /. nb) in
    (try
       while !iters < max_iters do
         Vec.axpy_inplace 1. d x;
         let ad = apply_a d in
         Vec.axpy_inplace (-1.) ad r;
         residual := Vec.norm2 r /. nb;
         incr iters;
         if !residual <= tol then raise Exit;
         let z = solve_b r in
         let rho = 1. /. ((2. *. sigma1) -. !rho_prev) in
         let c1 = rho *. !rho_prev in
         let c2 = 2. *. rho /. delta in
         for i = 0 to n - 1 do
           d.(i) <- (c1 *. d.(i)) +. (c2 *. z.(i))
         done;
         rho_prev := rho
       done
     with Exit -> ());
    ( x,
      {
        Linalg.Chebyshev.iterations = !iters;
        residual = !residual;
        converged = !residual <= tol;
      } )
end

(* Bitwise equality: structural (=) on float arrays compares words, which
   is exactly the "bit-identical" contract (no NaNs arise here). *)
let bitwise name a b = Alcotest.(check bool) name true (a = b)

let test_into_kernels_differential () =
  let open Linalg in
  let x = Vec.init 17 (fun i -> sin (float_of_int (i + 1))) in
  let y = Vec.init 17 (fun i -> cos (float_of_int (3 * i)) *. 2.5) in
  let dst = Vec.create 17 in
  Vec.add_into x y dst;
  bitwise "add_into" (Vec.add x y) dst;
  Vec.sub_into x y dst;
  bitwise "sub_into" (Vec.sub x y) dst;
  Vec.scale_into 0.7 x dst;
  bitwise "scale_into" (Vec.scale 0.7 x) dst;
  Vec.axpy_into 1.3 x y dst;
  bitwise "axpy_into" (Vec.axpy 1.3 x y) dst;
  Vec.copy_into x dst;
  bitwise "copy_into" x dst;
  Vec.fill dst 0.25;
  bitwise "fill" (Vec.init 17 (fun _ -> 0.25)) dst;
  Vec.center_into x dst;
  bitwise "center_into" (Vec.center x) dst;
  (* aliasing src = dst is allowed *)
  let z = Vec.copy x in
  Vec.center_into z z;
  bitwise "center_into aliased" (Vec.center x) z

let test_matvec_into_differential () =
  let open Linalg in
  let g = Graph_gen.connected_gnp ~seed:11L 14 0.35 in
  let l = Graph.laplacian g in
  let d = Graph.laplacian_dense g in
  let x = Vec.init 14 (fun i -> float_of_int ((i * 5) mod 7) -. 2.) in
  let dst = Vec.create 14 in
  Csr.mul_vec_into l x dst;
  bitwise "csr mul_vec_into" (Csr.mul_vec l x) dst;
  Dense.mul_vec_into d x dst;
  bitwise "dense mul_vec_into" (Dense.mul_vec d x) dst;
  let gdst = Vec.create 14 in
  Graph.apply_laplacian_into g x gdst;
  bitwise "apply_laplacian_into" (Graph.apply_laplacian g x) gdst

let test_cholesky_solve_into_differential () =
  let open Linalg in
  let n = 7 in
  let m =
    Dense.init n (fun i j -> float_of_int (((i * 5) + (j * 2)) mod 6) /. 6.)
  in
  let a = Dense.add (Dense.mul (Dense.transpose m) m) (Dense.identity n) in
  let chol = Dense.cholesky a in
  let b = Vec.init n (fun i -> float_of_int (i - 3)) in
  let scratch = Vec.create n in
  let x = Vec.create n in
  Dense.cholesky_solve_into chol b scratch x;
  bitwise "cholesky_solve_into" (Dense.cholesky_solve chol b) x

let test_normalize_is_a_copy () =
  let open Linalg in
  (* The seed returned the *input* when ‖x‖ = 0, so callers mutating the
     "fresh" result corrupted their argument. Both branches must copy. *)
  let z = Vec.create 4 in
  let nz = Vec.normalize z in
  Alcotest.(check bool) "zero branch is fresh" false (nz == z);
  nz.(0) <- 42.;
  check_float "input untouched" 0. 0. z.(0);
  let x = Vec.of_list [ 3.; 4. ] in
  let nx = Vec.normalize x in
  Alcotest.(check bool) "nonzero branch is fresh" false (nx == x);
  check_float "unit norm" 1e-12 1. (Vec.norm2 nx);
  check_float "input untouched" 1e-12 3. x.(0)

let test_cg_bit_identical_to_seed () =
  let open Linalg in
  List.iter
    (fun (seed, n, p) ->
      let g = Graph_gen.connected_gnp ~seed:(Int64.of_int seed) n p in
      let b =
        Vec.center (Vec.init n (fun i -> float_of_int ((i * 13) mod 9) -. 4.))
      in
      let apply = Graph.apply_laplacian g in
      let x_seed, st_seed = Seed_cg.solve apply b in
      let x_new, st_new = Cg.solve apply b in
      bitwise (Printf.sprintf "cg x (seed %d)" seed) x_seed x_new;
      Alcotest.(check bool)
        (Printf.sprintf "cg stats (seed %d)" seed)
        true
        (st_seed = st_new))
    [ (1, 12, 0.4); (2, 25, 0.25); (3, 40, 0.15); (9, 18, 0.5) ]

let test_chebyshev_bit_identical_to_seed () =
  let open Linalg in
  List.iter
    (fun (seed, n) ->
      let g = Graph_gen.connected_gnp ~seed:(Int64.of_int seed) n 0.3 in
      let b = Vec.center (Vec.init n (fun i -> sin (float_of_int (i + seed)))) in
      let apply_a = Graph.apply_laplacian g in
      (* Identity-style preconditioner (kept centered): convergence quality
         is irrelevant here, only arithmetic identity. *)
      let solve_b r = Vec.center (Vec.scale 0.125 r) in
      let kappa = 64. in
      let x_seed, st_seed =
        Seed_cheb.solve ~max_iters:30 ~apply_a ~solve_b ~kappa b
      in
      let x_new, st_new =
        Chebyshev.solve ~max_iters:30 ~apply_a ~solve_b ~kappa b
      in
      bitwise (Printf.sprintf "cheb x (seed %d)" seed) x_seed x_new;
      Alcotest.(check bool)
        (Printf.sprintf "cheb stats (seed %d)" seed)
        true
        (st_seed = st_new))
    [ (4, 15); (5, 28); (6, 33) ]

(* Gc.minor_words delta-of-deltas: running k and k + 20 iterations of the
   workspace kernel must allocate exactly the same number of minor words —
   i.e. the steady-state loop allocates nothing. Bytecode boxes floats at
   every step, so the assertion is native-only. *)
let minor_words_delta f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let test_cg_iterations_allocate_nothing () =
  let open Linalg in
  if Sys.backend_type = Sys.Native then begin
    let g = Graph_gen.connected_gnp ~seed:21L 60 0.15 in
    let l = Graph.laplacian g in
    let b =
      Vec.center (Vec.init 60 (fun i -> float_of_int ((i * 7) mod 11) -. 5.))
    in
    let ws = Cg.Workspace.create 60 in
    let apply_into src dst = Csr.mul_vec_into l src dst in
    let run k = ignore (Cg.solve_into ~max_iters:k ~tol:0. ws apply_into b) in
    run 2 (* warm-up *);
    let d1 = minor_words_delta (fun () -> run 5) in
    let d2 = minor_words_delta (fun () -> run 25) in
    check_float "20 extra CG iterations allocate zero words" 0. 0. (d2 -. d1)
  end

let test_chebyshev_iterations_allocate_nothing () =
  let open Linalg in
  if Sys.backend_type = Sys.Native then begin
    let g = Graph_gen.connected_gnp ~seed:22L 60 0.15 in
    let l = Graph.laplacian g in
    let b =
      Vec.center (Vec.init 60 (fun i -> float_of_int ((i * 3) mod 13) -. 6.))
    in
    let ws = Chebyshev.Workspace.create 60 in
    let apply_a_into src dst = Csr.mul_vec_into l src dst in
    let solve_b_into src dst = Vec.scale_into 0.125 src dst in
    let run k =
      ignore
        (Chebyshev.solve_into ~max_iters:k ~tol:0. ~apply_a_into ~solve_b_into
           ~kappa:64. ws b)
    in
    run 2 (* warm-up *);
    let d1 = minor_words_delta (fun () -> run 5) in
    let d2 = minor_words_delta (fun () -> run 25) in
    check_float "20 extra Chebyshev iterations allocate zero words" 0. 0.
      (d2 -. d1)
  end

let suite =
  suite
  @ [
      Alcotest.test_case "into kernels differential" `Quick
        test_into_kernels_differential;
      Alcotest.test_case "matvec into differential" `Quick
        test_matvec_into_differential;
      Alcotest.test_case "cholesky solve into differential" `Quick
        test_cholesky_solve_into_differential;
      Alcotest.test_case "normalize returns a copy" `Quick
        test_normalize_is_a_copy;
      Alcotest.test_case "cg bit-identical to seed" `Quick
        test_cg_bit_identical_to_seed;
      Alcotest.test_case "chebyshev bit-identical to seed" `Quick
        test_chebyshev_bit_identical_to_seed;
      Alcotest.test_case "cg zero-alloc iterations" `Quick
        test_cg_iterations_allocate_nothing;
      Alcotest.test_case "chebyshev zero-alloc iterations" `Quick
        test_chebyshev_iterations_allocate_nothing;
    ]
