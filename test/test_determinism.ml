(* Cross-kernel determinism under node-ID permutation: the paper's bounds
   are deterministic, so each of the four node programs (BFS, Bellman-Ford,
   Cole-Vishkin, Boruvka), run under the sanitizer on a relabelled input,
   must produce the same round total and a bit-identical sanitizer shape
   transcript on BOTH transports — and the two transports must agree with
   each other. The content transcript additionally pins node identifiers,
   so re-running the *same* instance must reproduce it bit-for-bit. *)

module K = Clique.Kernel
module San = Runtime.Sanitize

(* A fixed non-identity permutation: i -> (a*i + 3) mod n, a coprime to n. *)
let permutation n =
  let a = if n mod 7 = 0 then 11 else 7 in
  Array.init n (fun i -> ((a * i) + 3) mod n)

let permute_graph perm g =
  Graph.create (Graph.n g)
    (Array.to_list (Graph.edges g)
    |> List.map (fun e ->
           { e with Graph.u = perm.(e.Graph.u); Graph.v = perm.(e.Graph.v) }))

let sim_rt n = K.On_sim.create ~sanitize:true (Clique.Sim.create n)

let con_rt g = K.On_congest.create ~sanitize:true (Clique.Congest.create g)

let transcript = function
  | Some s -> San.transcript s
  | None -> Alcotest.fail "sanitizer was not enabled"

let sim_result rt =
  (K.On_sim.rounds rt, transcript (K.On_sim.sanitizer rt))

let con_result rt =
  (K.On_congest.rounds rt, transcript (K.On_congest.sanitizer rt))

(* All four runs (clique/congest x identity/permuted) must agree on the
   round total and on the permutation-invariant shape transcript. *)
let check_quad name (r1, t1) (r2, t2) (r3, t3) (r4, t4) =
  Alcotest.(check int) (name ^ ": clique rounds invariant") r1 r2;
  Alcotest.(check int) (name ^ ": congest rounds invariant") r3 r4;
  Alcotest.(check int) (name ^ ": kernels agree on rounds") r1 r3;
  Alcotest.check Alcotest.int64
    (name ^ ": clique shape transcript invariant")
    t1.San.shape_hash t2.San.shape_hash;
  Alcotest.check Alcotest.int64
    (name ^ ": congest shape transcript invariant")
    t3.San.shape_hash t4.San.shape_hash;
  Alcotest.check Alcotest.int64
    (name ^ ": kernels share one shape transcript")
    t1.San.shape_hash t3.San.shape_hash;
  Alcotest.(check bool) (name ^ ": transcripts non-empty") true (t1.San.events > 0)

let test_bfs () =
  let g = Gen.connected_gnp ~seed:21L 24 0.15 in
  let n = Graph.n g in
  let perm = permutation n in
  let gp = permute_graph perm g in
  let rt1 = sim_rt n in
  let d1 = K.Sim_programs.bfs rt1 g 0 in
  let rt2 = sim_rt n in
  let d2 = K.Sim_programs.bfs rt2 gp perm.(0) in
  let rt3 = con_rt g in
  let d3 = K.Congest_programs.bfs rt3 g 0 in
  let rt4 = con_rt gp in
  ignore (K.Congest_programs.bfs rt4 gp perm.(0));
  Alcotest.(check (array int)) "bfs: kernels agree on distances" d1 d3;
  Array.iteri
    (fun v d -> Alcotest.(check int) "bfs: distances permute" d d2.(perm.(v)))
    d1;
  check_quad "bfs" (sim_result rt1) (sim_result rt2) (con_result rt3)
    (con_result rt4)

let test_bfs_rerun_content_identical () =
  let g = Gen.connected_gnp ~seed:21L 24 0.15 in
  let n = Graph.n g in
  let run () =
    let rt = sim_rt n in
    ignore (K.Sim_programs.bfs rt g 0);
    transcript (K.On_sim.sanitizer rt)
  in
  let t1 = run () and t2 = run () in
  Alcotest.check Alcotest.int64 "content transcript reproduces bit-for-bit"
    t1.San.content_hash t2.San.content_hash;
  Alcotest.check Alcotest.int64 "shape transcript reproduces bit-for-bit"
    t1.San.shape_hash t2.San.shape_hash;
  (* The content transcript pins node identifiers, so relabelling changes
     it (that is what makes shape, not content, the permutation check). *)
  let perm = permutation n in
  let rt = sim_rt n in
  ignore (K.Sim_programs.bfs rt (permute_graph perm g) perm.(0));
  let tp = transcript (K.On_sim.sanitizer rt) in
  Alcotest.(check bool) "content transcript is label-sensitive" true
    (tp.San.content_hash <> t1.San.content_hash)

let test_bellman_ford () =
  let g = Gen.weighted_gnp ~seed:22L 16 0.3 8 in
  let n = Graph.n g in
  let perm = permutation n in
  let gp = permute_graph perm g in
  let rt1 = sim_rt n in
  let d1 = K.Sim_programs.bellman_ford rt1 g 0 in
  let rt2 = sim_rt n in
  let d2 = K.Sim_programs.bellman_ford rt2 gp perm.(0) in
  let rt3 = con_rt g in
  ignore (K.Congest_programs.bellman_ford rt3 g 0);
  let rt4 = con_rt gp in
  ignore (K.Congest_programs.bellman_ford rt4 gp perm.(0));
  Array.iteri
    (fun v d ->
      if Float.abs (d -. d2.(perm.(v))) > 1e-9 then
        Alcotest.failf "bellman-ford: distance mismatch at %d" v)
    d1;
  check_quad "bellman-ford" (sim_result rt1) (sim_result rt2)
    (con_result rt3) (con_result rt4)

let test_three_color () =
  let k = 12 in
  let succ = Array.init k (fun i -> (i + 1) mod k) in
  let pred = Array.init k (fun i -> (i + k - 1) mod k) in
  let ids = Array.init k (fun i -> (i * 53) + 2) in
  let perm = permutation k in
  (* Position perm.(i) plays the role position i played: same ids, same
     ring structure, relabelled carriers. *)
  let ids_p = Array.make k 0 in
  let succ_p = Array.make k 0 in
  let pred_p = Array.make k 0 in
  for i = 0 to k - 1 do
    ids_p.(perm.(i)) <- ids.(i);
    succ_p.(perm.(i)) <- perm.(succ.(i));
    pred_p.(perm.(i)) <- perm.(pred.(i))
  done;
  let rt1 = sim_rt k in
  let c1, chain1 = K.Sim_programs.three_color rt1 ~ids ~succ ~pred in
  let rt2 = sim_rt k in
  let c2, chain2 =
    K.Sim_programs.three_color rt2 ~ids:ids_p ~succ:succ_p ~pred:pred_p
  in
  let rt3 = con_rt (Gen.cycle k) in
  let c3, _ = K.Congest_programs.three_color rt3 ~ids ~succ ~pred in
  let rt4 = con_rt (permute_graph perm (Gen.cycle k)) in
  ignore
    (K.Congest_programs.three_color rt4 ~ids:ids_p ~succ:succ_p ~pred:pred_p);
  Alcotest.(check int) "three-color: chain rounds invariant" chain1 chain2;
  Alcotest.(check (array int)) "three-color: kernels agree on colors" c1 c3;
  Array.iteri
    (fun i c ->
      Alcotest.(check int) "three-color: colors permute" c c2.(perm.(i)))
    c1;
  check_quad "three-color" (sim_result rt1) (sim_result rt2)
    (con_result rt3) (con_result rt4)

let test_boruvka () =
  (* Complete graph (the congest kernel's broadcast needs all-to-all links)
     with deterministically perturbed weights for a unique MST. *)
  let n = 10 in
  let g0 = Gen.complete ~w:1. n in
  let g =
    Graph.create n
      (Array.to_list (Graph.edges g0)
      |> List.mapi (fun i e ->
             { e with Graph.w = 1. +. float_of_int ((i * 37) mod 11) }))
  in
  let perm = permutation n in
  let gp = permute_graph perm g in
  let rt1 = sim_rt n in
  let e1, w1, p1 = K.Sim_programs.boruvka rt1 g in
  let rt2 = sim_rt n in
  let e2, w2, p2 = K.Sim_programs.boruvka rt2 gp in
  let rt3 = con_rt g in
  let e3, _, _ = K.Congest_programs.boruvka rt3 g in
  let rt4 = con_rt gp in
  ignore (K.Congest_programs.boruvka rt4 gp);
  (* Edge identifiers survive relabelling (the edge list order is kept), so
     the chosen MST must be literally the same id set. *)
  Alcotest.(check (list int)) "boruvka: same MST edge ids" e1 e2;
  Alcotest.(check (list int)) "boruvka: kernels agree on MST" e1 e3;
  Alcotest.(check (float 1e-9)) "boruvka: same weight" w1 w2;
  Alcotest.(check int) "boruvka: same phase count" p1 p2;
  check_quad "boruvka" (sim_result rt1) (sim_result rt2) (con_result rt3)
    (con_result rt4)

let suite =
  [
    Alcotest.test_case "bfs invariant under relabelling" `Quick test_bfs;
    Alcotest.test_case "bfs content transcript reproduces" `Quick
      test_bfs_rerun_content_identical;
    Alcotest.test_case "bellman-ford invariant under relabelling" `Quick
      test_bellman_ford;
    Alcotest.test_case "three-color invariant under relabelling" `Quick
      test_three_color;
    Alcotest.test_case "boruvka invariant under relabelling" `Quick
      test_boruvka;
  ]
