#!/bin/sh
# Smoke test for the cc_lint CI gate: stage the planted-violation corpus
# (test/corpus/**.cml) into a scratch tree, run the full linter, and check
# that the gate (a) fails with the expected rules on the corpus and (b)
# passes on the shipped tree.
#
# Usage: test/lint_smoke.sh [path-to-cc_lint-binary]
set -eu

repo_root=$(CDPATH='' cd -- "$(dirname -- "$0")/.." && pwd)
lint=${1:-"$repo_root/_build/default/bin/cc_lint.exe"}
if [ ! -x "$lint" ]; then
  echo "lint_smoke: $lint not built (run: dune build bin/cc_lint.exe)" >&2
  exit 2
fi

stage=$(mktemp -d)
trap 'rm -rf "$stage"' EXIT INT TERM

# Stage every corpus file, swapping the compile-shielding .cml extension
# back to .ml so the linter's walker picks them up under their intended
# lib/<layer>/ paths.
(cd "$repo_root/test/corpus" && find . -name '*.cml' -print) |
while read -r f; do
  dst="$stage/${f%.cml}.ml"
  mkdir -p "$(dirname "$dst")"
  cp "$repo_root/test/corpus/$f" "$dst"
done

out="$stage/findings.txt"
status=0
(cd "$stage" && "$lint" --semantic lib) >"$out" 2>&1 || status=$?

fail() {
  echo "lint_smoke: FAIL: $1" >&2
  echo "--- linter output ---" >&2
  cat "$out" >&2
  exit 1
}

[ "$status" -eq 1 ] || fail "expected exit 1 on the corpus, got $status"
grep -q ' L10 ' "$out" || fail "missing L10 finding"
grep -q ' L11 ' "$out" || fail "missing L11 finding"
grep -q ' L12 ' "$out" || fail "missing L12 finding"
grep -q ' L2 ' "$out" || fail "missing lexical L2 finding (fast pass not run?)"
grep -q ' L13 ' "$out" || fail "missing L13 finding (supervision bypass)"
grep -q 'Planted_l10.choose -> Entropy_pool.draw -> Random.int' "$out" ||
  fail "L10 chain does not name every hop"

# The corpus must also round-trip through the JSON emitter (exit 1 still).
jstatus=0
(cd "$stage" && "$lint" --semantic --json lib) >"$stage/findings.json" 2>/dev/null ||
  jstatus=$?
[ "$jstatus" -eq 1 ] || fail "expected exit 1 from --json on the corpus, got $jstatus"
grep -q '"cc-lint/1"' "$stage/findings.json" || fail "JSON output lacks schema tag"

# The shipped tree must stay clean under the same gate.
(cd "$repo_root" && "$lint" --semantic lib bin bench test) >"$out" 2>&1 ||
  fail "shipped tree is not clean"

echo "lint_smoke: OK"
