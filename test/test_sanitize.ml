(* Unit tests for the dynamic sanitizer mode of [Runtime.Make], plus the
   two ledger primitives it leans on: the Trace ring buffer's behaviour
   exactly at capacity and Cost.charge's rejection of negative rounds. *)

module K = Clique.Kernel
module San = Runtime.Sanitize

let violation kind f =
  try
    ignore (f ());
    None
  with San.Violation { phase; kind = k; detail } when k = kind ->
    Some (phase, detail)

(* ------------------------------------------------------- width checking *)

let test_width_violation_names_phase () =
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 3) in
  match
    violation "width" (fun () ->
        K.with_phase rt "burst" (fun () ->
            K.On_sim.exchange rt [| [ (1, [| 1; 2; 3 |]) ]; []; [] |]))
  with
  | None -> Alcotest.fail "oversized exchange must trip the sanitizer"
  | Some (phase, detail) ->
    Alcotest.(check string) "offending phase is reported" "burst" phase;
    Alcotest.(check bool) "detail names the link" true
      (String.length detail > 0)

let test_width_aggregates_per_link () =
  (* Three 1-word messages to the same destination: each payload fits the
     2-word bound, their per-link sum does not. *)
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 3) in
  Alcotest.(check bool) "per-link aggregation" true
    (violation "width" (fun () ->
         K.On_sim.exchange rt
           [| [ (1, [| 1 |]); (1, [| 2 |]); (1, [| 3 |]) ]; []; [] |])
    <> None)

let test_width_route_and_broadcast () =
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 3) in
  Alcotest.(check bool) "wide routed payload" true
    (violation "width" (fun () ->
         K.On_sim.route rt [ (0, 1, [| 1; 2; 3 |]) ])
    <> None);
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 3) in
  Alcotest.(check bool) "wide broadcast payload" true
    (violation "width" (fun () ->
         K.On_sim.broadcast rt [| [| 1; 2; 3 |]; [| 0 |]; [| 0 |] |])
    <> None);
  (* An explicit wider width is the sanctioned way to send more. *)
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 3) in
  ignore (K.On_sim.route ~width:3 rt [ (0, 1, [| 1; 2; 3 |]) ])

(* ----------------------------------------- duplicate outbox destinations *)

let test_duplicate_dst_flagged () =
  (* Two width-respecting messages from one sender to the same destination:
     the kernel would silently concatenate them into one round, so the
     sanitizer reports the outbox as malformed instead. *)
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 3) in
  match
    violation "duplicate-dst" (fun () ->
        K.with_phase rt "shift" (fun () ->
            K.On_sim.exchange rt [| [ (1, [| 7 |]); (1, [| 8 |]) ]; []; [] |]))
  with
  | None -> Alcotest.fail "duplicate (dst, _) entries must trip the sanitizer"
  | Some (phase, detail) ->
    Alcotest.(check string) "offending phase" "shift" phase;
    Alcotest.(check bool) "detail names sender and destination" true
      (String.length detail > 0)

let test_duplicate_dst_width_wins () =
  (* When the duplicates also blow the width bound, the width violation
     keeps firing first (regression pin for the check ordering). *)
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 3) in
  Alcotest.(check bool) "width reported before duplicate-dst" true
    (violation "width" (fun () ->
         K.On_sim.exchange rt
           [| [ (1, [| 1 |]); (1, [| 2 |]); (1, [| 3 |]) ]; []; [] |])
    <> None);
  (* Distinct destinations stay legal. *)
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 3) in
  ignore (K.On_sim.exchange rt [| [ (1, [| 1 |]); (2, [| 2 |]) ]; []; [] |])

(* ------------------------------------------------ broadcast width rule *)

let test_broadcast_multi_payload_flagged () =
  (* The planted violation of the broadcast model: one source ships two
     distinct payloads in a single round. The sanitizer must reject it
     before the transport runs and name the offending phase. *)
  let rt = K.On_bcast.create ~sanitize:true (Clique.Broadcast.create 3) in
  match
    violation "broadcast-width" (fun () ->
        K.On_bcast.with_phase rt "fanout" (fun () ->
            K.On_bcast.exchange rt [| [ (1, [| 7 |]); (2, [| 8 |]) ]; []; [] |]))
  with
  | None -> Alcotest.fail "two distinct payloads per src must trip the sanitizer"
  | Some (phase, detail) ->
    Alcotest.(check string) "offending phase is reported" "fanout" phase;
    Alcotest.(check bool) "detail names the source and the rule" true
      (String.length detail > 0)

let test_broadcast_width_wins_and_legal_fanout () =
  (* An oversized payload reports "width" even when the outbox is also
     multi-payload (check ordering mirrors the unicast sanitizer)... *)
  let rt = K.On_bcast.create ~sanitize:true (Clique.Broadcast.create 3) in
  Alcotest.(check bool) "width reported before broadcast-width" true
    (violation "width" (fun () ->
         K.On_bcast.exchange rt
           [| [ (1, [| 1; 2; 3 |]); (2, [| 9 |]) ]; []; [] |])
    <> None);
  (* ...and a same-payload fanout is exactly what the model allows. *)
  let rt = K.On_bcast.create ~sanitize:true (Clique.Broadcast.create 3) in
  ignore (K.On_bcast.exchange rt [| [ (1, [| 5 |]); (2, [| 5 |]) ]; []; [] |]);
  Alcotest.(check int) "legal fanout is one round" 1 (K.On_bcast.rounds rt)

let test_model_selector () =
  let module Mo = Runtime.Model in
  Fun.protect
    ~finally:(fun () -> Mo.set_default None)
    (fun () ->
      Alcotest.(check bool) "broadcast parses" true
        (Mo.of_string "Broadcast" = Some Mo.Broadcast
        && Mo.of_string "bcast" = Some Mo.Broadcast);
      Alcotest.(check bool) "unicast parses" true
        (Mo.of_string "unicast" = Some Mo.Unicast);
      Alcotest.(check bool) "junk rejected" true (Mo.of_string "???" = None);
      Mo.set_default (Some Mo.Broadcast);
      Alcotest.(check string) "forced default wins" "broadcast"
        (Mo.name (Mo.default ()));
      Mo.set_default None)

(* ---------------------------------------------------- phase attribution *)

let test_phase_attribution () =
  let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 3) in
  (* Setup charges under "main" are fine before any named phase... *)
  K.charge rt 1;
  K.with_phase rt "solve" (fun () -> K.charge rt 2);
  (* ...but once a named phase has run, unattributed rounds are a bug. *)
  (match violation "phase-attribution" (fun () -> K.charge rt 3) with
  | None -> Alcotest.fail "post-setup main-phase rounds must be flagged"
  | Some (phase, _) -> Alcotest.(check string) "phase" "main" phase);
  (* Zero-round events carry no attribution burden. *)
  K.charge rt 0

let test_phase_attribution_off_when_unsanitized () =
  (* [~sanitize:false] must win even under an ambient CC_SANITIZE=1. *)
  let rt = K.On_sim.create ~sanitize:false (Clique.Sim.create 3) in
  K.with_phase rt "solve" (fun () -> K.charge rt 2);
  K.charge rt 3;
  Alcotest.(check int) "no sanitizer, no violation" 5 (K.rounds rt);
  Alcotest.(check bool) "not sanitized" false (K.On_sim.sanitized rt)

(* ---------------------------------------------------------- ledger drift *)

let test_ledger_drift () =
  let sim = Clique.Sim.create 3 in
  let rt = K.On_sim.create ~sanitize:true sim in
  K.charge rt ~phase:"p" 1;
  (* Bypass the runtime: the transport moves, the ledger does not. *)
  Clique.Sim.charge sim 2;
  Alcotest.(check bool) "bypassed rounds detected at the next event" true
    (violation "ledger-drift" (fun () -> K.charge rt ~phase:"p" 1) <> None)

let test_drift_baseline_over_used_transport () =
  (* A runtime created over a transport that already has rounds on the
     clock must not see phantom drift: the baseline is snapshotted. *)
  let sim = Clique.Sim.create 3 in
  Clique.Sim.charge sim 5;
  let rt = K.On_sim.create ~sanitize:true sim in
  K.charge rt ~phase:"p" 2;
  Alcotest.(check int) "ledger counts only its own rounds" 2 (K.rounds rt)

(* ------------------------------------------------- enabling and default *)

let test_set_default () =
  Fun.protect
    ~finally:(fun () -> San.set_default None)
    (fun () ->
      San.set_default (Some true);
      let rt = K.clique 2 in
      Alcotest.(check bool) "default on" true (K.On_sim.sanitized rt);
      Alcotest.(check bool) "sanitizer exposed" true
        (K.On_sim.sanitizer rt <> None);
      San.set_default (Some false);
      let rt = K.clique 2 in
      Alcotest.(check bool) "default off" false (K.On_sim.sanitized rt);
      (* An explicit argument beats the ambient default. *)
      let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 2) in
      Alcotest.(check bool) "explicit wins" true (K.On_sim.sanitized rt))

(* ------------------------------------------------------------ transcript *)

let test_transcript_distinguishes_runs () =
  let run charges =
    let rt = K.On_sim.create ~sanitize:true (Clique.Sim.create 2) in
    List.iter (fun (p, r) -> K.charge rt ~phase:p r) charges;
    match K.On_sim.sanitizer rt with
    | Some s -> San.transcript s
    | None -> Alcotest.fail "sanitizer expected"
  in
  let a = run [ ("x", 1); ("y", 2) ] in
  let a' = run [ ("x", 1); ("y", 2) ] in
  let b = run [ ("x", 1); ("y", 3) ] in
  Alcotest.check Alcotest.int64 "same run, same shape" a.San.shape_hash
    a'.San.shape_hash;
  Alcotest.check Alcotest.int64 "same run, same content" a.San.content_hash
    a'.San.content_hash;
  Alcotest.(check int) "events counted" 2 a.San.events;
  Alcotest.(check bool) "different run, different shape" true
    (a.San.shape_hash <> b.San.shape_hash)

(* --------------------------------------------------- trace ring at capacity *)

let test_trace_wraparound_at_capacity () =
  let tr = Runtime.Trace.create 3 in
  for i = 1 to 3 do
    Runtime.Trace.record tr ~phase:(string_of_int i) ~rounds:i ~words:0
  done;
  (* Exactly full: nothing dropped yet. *)
  Alcotest.(check int) "recorded" 3 (Runtime.Trace.recorded tr);
  Alcotest.(check (list string))
    "all retained, oldest first" [ "1"; "2"; "3" ]
    (List.map (fun e -> e.Runtime.Trace.phase) (Runtime.Trace.to_list tr));
  (* One past capacity: the oldest event falls off, seq keeps counting. *)
  Runtime.Trace.record tr ~phase:"4" ~rounds:4 ~words:0;
  Alcotest.(check int) "recorded counts past capacity" 4
    (Runtime.Trace.recorded tr);
  let retained = Runtime.Trace.to_list tr in
  Alcotest.(check (list string))
    "window slid by one" [ "2"; "3"; "4" ]
    (List.map (fun e -> e.Runtime.Trace.phase) retained);
  Alcotest.(check (list int))
    "seq is global, not slot index" [ 1; 2; 3 ]
    (List.map (fun e -> e.Runtime.Trace.seq) retained);
  (* Wrap all the way around: only the newest capacity-many survive. *)
  for i = 5 to 10 do
    Runtime.Trace.record tr ~phase:(string_of_int i) ~rounds:i ~words:0
  done;
  Alcotest.(check (list string))
    "full wrap" [ "8"; "9"; "10" ]
    (List.map (fun e -> e.Runtime.Trace.phase) (Runtime.Trace.to_list tr))

let test_trace_capacity_validation () =
  Alcotest.(check bool) "capacity 0 rejected" true
    (try
       ignore (Runtime.Trace.create 0);
       false
     with Invalid_argument _ -> true)

(* ----------------------------------------------- cost charge validation *)

let test_cost_negative_charge_rejected () =
  let c = Runtime.Cost.create () in
  Alcotest.(check bool) "negative rounds rejected" true
    (try
       Runtime.Cost.charge c ~phase:"x" (-1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "ledger untouched by the rejected charge" 0
    (Runtime.Cost.rounds c);
  Runtime.Cost.charge c ~phase:"x" 0;
  Alcotest.(check int) "zero rounds is a valid charge" 0
    (Runtime.Cost.rounds c)

let suite =
  [
    Alcotest.test_case "width violation names the phase" `Quick
      test_width_violation_names_phase;
    Alcotest.test_case "width aggregates per link" `Quick
      test_width_aggregates_per_link;
    Alcotest.test_case "width on route and broadcast" `Quick
      test_width_route_and_broadcast;
    Alcotest.test_case "duplicate dst flagged" `Quick
      test_duplicate_dst_flagged;
    Alcotest.test_case "width beats duplicate-dst; distinct dst legal" `Quick
      test_duplicate_dst_width_wins;
    Alcotest.test_case "broadcast multi-payload flagged" `Quick
      test_broadcast_multi_payload_flagged;
    Alcotest.test_case "broadcast width ordering; same-payload fanout legal"
      `Quick test_broadcast_width_wins_and_legal_fanout;
    Alcotest.test_case "CC_MODEL selector" `Quick test_model_selector;
    Alcotest.test_case "phase attribution" `Quick test_phase_attribution;
    Alcotest.test_case "no checks when unsanitized" `Quick
      test_phase_attribution_off_when_unsanitized;
    Alcotest.test_case "ledger drift detection" `Quick test_ledger_drift;
    Alcotest.test_case "drift baseline on used transport" `Quick
      test_drift_baseline_over_used_transport;
    Alcotest.test_case "set_default" `Quick test_set_default;
    Alcotest.test_case "transcript distinguishes runs" `Quick
      test_transcript_distinguishes_runs;
    Alcotest.test_case "trace wraparound at capacity" `Quick
      test_trace_wraparound_at_capacity;
    Alcotest.test_case "trace capacity validation" `Quick
      test_trace_capacity_validation;
    Alcotest.test_case "cost rejects negative rounds" `Quick
      test_cost_negative_charge_rejected;
  ]
