(* Tests for the flow stack: Dinic oracle, Ford–Fulkerson, trivial baseline,
   electrical flows, decomposition, flow rounding, and the Theorem 1.2
   max-flow pipeline. *)

module Graph_gen = Gen

let arc src dst cap cost = { Digraph.src; dst; cap; cost }

(* The classic CLRS example: max flow 23. *)
let clrs () =
  Digraph.create 6
    [
      arc 0 1 16 0; arc 0 2 13 0; arc 1 2 10 0; arc 2 1 4 0;
      arc 1 3 12 0; arc 3 2 9 0; arc 2 4 14 0; arc 4 3 7 0;
      arc 3 5 20 0; arc 4 5 4 0;
    ]

let diamond () =
  Digraph.create 4
    [ arc 0 1 1 0; arc 0 2 1 0; arc 1 3 1 0; arc 2 3 1 0 ]

let test_dinic_clrs () =
  let g = clrs () in
  let f, v = Dinic.max_flow g ~s:0 ~t:5 in
  Alcotest.(check int) "CLRS value" 23 v;
  Alcotest.(check bool) "feasible" true (Flow.is_feasible g ~s:0 ~t:5 ~f);
  Alcotest.(check (float 1e-9)) "value matches flow" 23. (Flow.value g ~s:0 ~f)

let test_dinic_disconnected () =
  let g = Digraph.create 4 [ arc 0 1 5 0; arc 2 3 5 0 ] in
  Alcotest.(check int) "no path" 0 (Dinic.max_flow_value g ~s:0 ~t:3)

let test_dinic_min_cut () =
  let g = diamond () in
  let cut = Dinic.min_cut g ~s:0 ~t:3 in
  Alcotest.(check bool) "s inside" true cut.(0);
  Alcotest.(check bool) "t outside" false cut.(3)

let test_ff_matches_dinic () =
  List.iter
    (fun seed ->
      let g = Graph_gen.random_network ~seed:(Int64.of_int seed) 15 40 8 in
      let r = Ford_fulkerson.max_flow g ~s:0 ~t:14 in
      let expect = Dinic.max_flow_value g ~s:0 ~t:14 in
      Alcotest.(check int) (Printf.sprintf "seed %d" seed) expect
        r.Ford_fulkerson.value;
      Alcotest.(check bool) "feasible" true
        (Flow.is_feasible g ~s:0 ~t:14 ~f:r.Ford_fulkerson.f))
    [ 1; 2; 3; 4; 5 ]

let test_ff_round_charging () =
  let g = Graph_gen.layered_network ~seed:3L 3 4 6 in
  let r = Ford_fulkerson.max_flow g ~s:0 ~t:(Digraph.n g - 1) in
  Alcotest.(check bool) "rounds = (iters+1)·n^0.158" true
    (r.Ford_fulkerson.rounds
    = (r.Ford_fulkerson.iterations + 1)
      * Runtime.Cost.apsp_rounds (Digraph.n g))

let test_trivial_baseline () =
  let g = clrs () in
  let r = Trivial.max_flow g ~s:0 ~t:5 in
  Alcotest.(check int) "value" 23 r.Trivial.value;
  Alcotest.(check bool) "rounds positive" true (r.Trivial.rounds > 0)

(* ------------------------------------------------------------- Electrical *)

let test_electrical_series () =
  (* Two unit resistors in series: effective resistance 2. *)
  let g = Graph_gen.path 3 in
  Alcotest.(check (float 1e-8)) "series" 2.
    (Electrical.effective_resistance g 0 2)

let test_electrical_parallel () =
  (* Two parallel unit edges: 1/2. *)
  let g =
    Graph.create 2
      [ { Graph.u = 0; v = 1; w = 1. }; { Graph.u = 0; v = 1; w = 1. } ]
  in
  Alcotest.(check (float 1e-8)) "parallel" 0.5
    (Electrical.effective_resistance g 0 1)

let test_electrical_flow_conserves () =
  let g = Graph_gen.connected_gnp ~seed:31L 20 0.3 in
  let b = Linalg.Vec.sub (Linalg.Vec.basis 20 0) (Linalg.Vec.basis 20 19) in
  let r =
    Electrical.compute ~support:g ~resistance:(fun _ -> 1.) ~b ()
  in
  (* Net flow out of 0 is 1; conservation elsewhere. *)
  let ex = Array.make 20 0. in
  Array.iteri
    (fun id e ->
      ex.(e.Graph.u) <- ex.(e.Graph.u) -. r.Electrical.flow.(id);
      ex.(e.Graph.v) <- ex.(e.Graph.v) +. r.Electrical.flow.(id))
    (Graph.edges g);
  Alcotest.(check (float 1e-7)) "unit out of source" (-1.) ex.(0);
  for v = 1 to 18 do
    Alcotest.(check (float 1e-7)) "conserved" 0. ex.(v)
  done

let test_electrical_energy_thomson () =
  (* Electrical flow minimizes energy: energy = effective resistance for a
     unit demand, and is ≤ energy of any other unit flow. *)
  let g = Graph_gen.cycle 4 in
  let b = Linalg.Vec.sub (Linalg.Vec.basis 4 0) (Linalg.Vec.basis 4 2) in
  let r = Electrical.compute ~support:g ~resistance:(fun _ -> 1.) ~b () in
  (* Two paths of length 2 in parallel: R_eff = 1. *)
  Alcotest.(check (float 1e-8)) "energy = R_eff" 1. r.Electrical.energy

(* -------------------------------------------------------------- Decompose *)

let test_decompose_roundtrip () =
  let g = clrs () in
  let f, v = Dinic.max_flow g ~s:0 ~t:5 in
  let items = Decompose.decompose g ~s:0 ~t:5 f in
  let back = Decompose.accumulate g items in
  Alcotest.(check bool) "accumulates back" true (Linalg.Vec.equal ~eps:1e-6 f back);
  let path_value =
    List.fold_left
      (fun acc item ->
        match item with
        | Decompose.Path { amount; _ } -> acc +. amount
        | Decompose.Cycle _ -> acc)
      0. items
  in
  Alcotest.(check (float 1e-6)) "paths carry the value" (float_of_int v)
    path_value

let test_decompose_quantize () =
  let g = diamond () in
  let f = [| 0.8; 0.55; 0.8; 0.55 |] in
  let items = Decompose.decompose g ~s:0 ~t:3 f in
  let paths = Decompose.quantize_paths ~delta:0.25 items in
  let q = Decompose.accumulate g paths in
  (* Grid conservation and within caps. *)
  Alcotest.(check bool) "feasible" true (Flow.is_feasible g ~s:0 ~t:3 ~f:q);
  Array.iter
    (fun x ->
      Alcotest.(check (float 1e-9)) "grid multiple" 0.
        (Float.abs (x /. 0.25 -. Float.round (x /. 0.25))))
    q

(* ----------------------------------------------------------- FlowRounding *)

let test_rounding_diamond () =
  let g = diamond () in
  (* Half a unit on each path: value 1. Rounding must produce an integral
     flow of value ≥ 1 (= pick one path). *)
  let f = [| 0.5; 0.5; 0.5; 0.5 |] in
  let r = Rounding.Flow_rounding.round g ~s:0 ~t:3 ~delta:0.5 f in
  Alcotest.(check bool) "integral" true (Flow.is_integral r.Rounding.Flow_rounding.f);
  Alcotest.(check bool) "feasible" true
    (Flow.is_feasible g ~s:0 ~t:3 ~f:r.Rounding.Flow_rounding.f);
  Alcotest.(check bool) "value not decreased" true
    (Flow.value g ~s:0 ~f:r.Rounding.Flow_rounding.f >= 1. -. 1e-9)

let test_rounding_respects_costs () =
  (* Two parallel s→t paths, one expensive; fractional flow split evenly;
     the cost-aware rounding must shift to the cheap path. *)
  let g =
    Digraph.create 4
      [ arc 0 1 1 10; arc 1 3 1 10; arc 0 2 1 1; arc 2 3 1 1 ]
  in
  let f = [| 0.5; 0.5; 0.5; 0.5 |] in
  let cost id = float_of_int (Digraph.arc g id).Digraph.cost in
  let r = Rounding.Flow_rounding.round ~cost g ~s:0 ~t:3 ~delta:0.5 f in
  let rf = r.Rounding.Flow_rounding.f in
  Alcotest.(check bool) "integral+feasible" true
    (Flow.is_integral rf && Flow.is_feasible g ~s:0 ~t:3 ~f:rf);
  let new_cost = Flow.cost g rf in
  let old_cost = Flow.cost g f in
  Alcotest.(check bool)
    (Printf.sprintf "cost %g <= %g" new_cost old_cost)
    true (new_cost <= old_cost +. 1e-9);
  (* It must have picked the cheap path. *)
  Alcotest.(check (float 1e-9)) "cheap path used" 1. rf.(2)

let test_rounding_grid_validation () =
  let g = diamond () in
  Alcotest.(check bool) "rejects off-grid" true
    (try
       ignore (Rounding.Flow_rounding.round g ~s:0 ~t:3 ~delta:0.5 [| 0.3; 0.3; 0.3; 0.3 |]);
       false
     with Invalid_argument _ -> true)

let test_rounding_preserves_integral () =
  let g = clrs () in
  let f, _ = Dinic.max_flow g ~s:0 ~t:5 in
  let r = Rounding.Flow_rounding.round g ~s:0 ~t:5 ~delta:0.25 f in
  Alcotest.(check bool) "unchanged" true
    (Linalg.Vec.equal ~eps:1e-9 f r.Rounding.Flow_rounding.f)

(* -------------------------------------------------------------- MaxFlow IPM *)

let check_ipm g ~s ~t =
  let r = Maxflow_ipm.max_flow g ~s ~t in
  let expect = Dinic.max_flow_value g ~s ~t in
  Alcotest.(check int) "matches Dinic" expect r.Maxflow_ipm.value;
  Alcotest.(check bool) "feasible" true
    (Flow.is_feasible g ~s ~t ~f:r.Maxflow_ipm.f);
  Alcotest.(check bool) "integral" true (Flow.is_integral r.Maxflow_ipm.f);
  r

let test_ipm_clrs () = ignore (check_ipm (clrs ()) ~s:0 ~t:5)

let test_ipm_diamond () = ignore (check_ipm (diamond ()) ~s:0 ~t:3)

let test_ipm_layered () =
  List.iter
    (fun seed ->
      let g = Graph_gen.layered_network ~seed:(Int64.of_int seed) 3 4 5 in
      ignore (check_ipm g ~s:0 ~t:(Digraph.n g - 1)))
    [ 1; 2; 3 ]

let test_ipm_random () =
  List.iter
    (fun seed ->
      let g = Graph_gen.random_network ~seed:(Int64.of_int seed) 12 30 6 in
      ignore (check_ipm g ~s:0 ~t:11))
    [ 4; 5; 6 ]

let test_ipm_unit_bipartite () =
  let g = Graph_gen.unit_bipartite ~seed:7L 6 0.4 in
  ignore (check_ipm g ~s:0 ~t:(Digraph.n g - 1))

let test_ipm_repair_small_on_layered () =
  (* On layered networks the relaxation is exact, so the repair phase should
     need few augmentations (the paper's count is 1). *)
  let g = Graph_gen.layered_network ~seed:11L 4 4 4 in
  let r = check_ipm g ~s:0 ~t:(Digraph.n g - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "repairs=%d small" r.Maxflow_ipm.repair_augmentations)
    true
    (r.Maxflow_ipm.repair_augmentations
    <= max 2 (r.Maxflow_ipm.value / 2))

let test_ipm_phase_accounting () =
  let g = Graph_gen.layered_network ~seed:13L 3 3 4 in
  let r = Maxflow_ipm.max_flow g ~s:0 ~t:(Digraph.n g - 1) in
  let total =
    List.fold_left (fun a (_, x) -> a + x) 0 r.Maxflow_ipm.phase_rounds
  in
  Alcotest.(check int) "phases sum" r.Maxflow_ipm.rounds total;
  Alcotest.(check bool) "has ipm phase" true
    (List.mem_assoc "ipm" r.Maxflow_ipm.phase_rounds)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"ipm max flow = dinic (random networks)" ~count:10
      small_nat
      (fun seed ->
        let g =
          Graph_gen.random_network ~seed:(Int64.of_int (seed + 19)) 10 25 5
        in
        let r = Maxflow_ipm.max_flow g ~s:0 ~t:9 in
        r.Maxflow_ipm.value = Dinic.max_flow_value g ~s:0 ~t:9
        && Flow.is_feasible g ~s:0 ~t:9 ~f:r.Maxflow_ipm.f);
    Test.make ~name:"rounding: integral, feasible, value kept" ~count:20
      small_nat
      (fun seed ->
        let g =
          Graph_gen.layered_network ~seed:(Int64.of_int (seed + 23)) 3 3 4
        in
        let t = Digraph.n g - 1 in
        let f, _ = Dinic.max_flow g ~s:0 ~t in
        (* Make it fractional: scale down to 3/4 then re-quantize. *)
        let frac = Array.map (fun x -> 0.75 *. x) f in
        let items = Decompose.decompose g ~s:0 ~t frac in
        let paths = Decompose.quantize_paths ~delta:0.25 items in
        let q = Decompose.accumulate g paths in
        let v0 = Flow.value g ~s:0 ~f:q in
        let r = Rounding.Flow_rounding.round g ~s:0 ~t ~delta:0.25 q in
        Flow.is_integral r.Rounding.Flow_rounding.f
        && Flow.is_feasible g ~s:0 ~t ~f:r.Rounding.Flow_rounding.f
        && Flow.value g ~s:0 ~f:r.Rounding.Flow_rounding.f >= v0 -. 1e-9);
  ]

let suite =
  [
    Alcotest.test_case "dinic CLRS" `Quick test_dinic_clrs;
    Alcotest.test_case "dinic disconnected" `Quick test_dinic_disconnected;
    Alcotest.test_case "dinic min cut" `Quick test_dinic_min_cut;
    Alcotest.test_case "ford-fulkerson = dinic" `Quick test_ff_matches_dinic;
    Alcotest.test_case "ford-fulkerson round charge" `Quick
      test_ff_round_charging;
    Alcotest.test_case "trivial baseline" `Quick test_trivial_baseline;
    Alcotest.test_case "electrical series" `Quick test_electrical_series;
    Alcotest.test_case "electrical parallel" `Quick test_electrical_parallel;
    Alcotest.test_case "electrical conserves" `Quick
      test_electrical_flow_conserves;
    Alcotest.test_case "electrical energy" `Quick test_electrical_energy_thomson;
    Alcotest.test_case "decompose roundtrip" `Quick test_decompose_roundtrip;
    Alcotest.test_case "decompose quantize" `Quick test_decompose_quantize;
    Alcotest.test_case "rounding diamond" `Quick test_rounding_diamond;
    Alcotest.test_case "rounding respects costs" `Quick
      test_rounding_respects_costs;
    Alcotest.test_case "rounding grid validation" `Quick
      test_rounding_grid_validation;
    Alcotest.test_case "rounding preserves integral" `Quick
      test_rounding_preserves_integral;
    Alcotest.test_case "ipm CLRS" `Quick test_ipm_clrs;
    Alcotest.test_case "ipm diamond" `Quick test_ipm_diamond;
    Alcotest.test_case "ipm layered" `Quick test_ipm_layered;
    Alcotest.test_case "ipm random" `Quick test_ipm_random;
    Alcotest.test_case "ipm bipartite" `Quick test_ipm_unit_bipartite;
    Alcotest.test_case "ipm repair small on layered" `Quick
      test_ipm_repair_small_on_layered;
    Alcotest.test_case "ipm phase accounting" `Quick test_ipm_phase_accounting;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_tests

(* --------------------------------------------------- additional coverage *)

let test_flow_helpers () =
  let g = diamond () in
  let f = [| 1.; 0.5; 1.; 0.5 |] in
  Alcotest.(check (float 1e-12)) "value" 1.5 (Flow.value g ~s:0 ~f);
  Alcotest.(check (float 1e-12)) "conservation ok" 0.
    (Flow.conservation_violation g ~s:0 ~t:3 ~f);
  Alcotest.(check bool) "not integral" false (Flow.is_integral f);
  Alcotest.(check bool) "integral snapshot" true
    (Flow.round_to_int f = [| 1; 1; 1; 1 |] || Flow.round_to_int f = [| 1; 0; 1; 0 |])

let test_flow_capacity_violation () =
  let g = diamond () in
  Alcotest.(check (float 1e-12)) "over cap by 1" 1.
    (Flow.capacity_violation g ~f:[| 2.; 0.; 2.; 0. |]);
  Alcotest.(check (float 1e-12)) "negative flow" 0.5
    (Flow.capacity_violation g ~f:[| -0.5; 0.; 0.; 0. |])

let test_zero_capacity_arcs () =
  let g =
    Digraph.create 3 [ arc 0 1 0 0; arc 0 2 3 0; arc 2 1 3 0 ]
  in
  let r = Maxflow_ipm.max_flow g ~s:0 ~t:1 in
  Alcotest.(check int) "routes around the dead arc" 3 r.Maxflow_ipm.value;
  Alcotest.(check (float 1e-9)) "dead arc unused" 0. r.Maxflow_ipm.f.(0)

let test_single_arc_network () =
  let g = Digraph.create 2 [ arc 0 1 7 0 ] in
  let r = Maxflow_ipm.max_flow g ~s:0 ~t:1 in
  Alcotest.(check int) "value 7" 7 r.Maxflow_ipm.value

let test_disconnected_st () =
  let g = Digraph.create 4 [ arc 0 1 5 0; arc 2 3 5 0 ] in
  let r = Maxflow_ipm.max_flow g ~s:0 ~t:3 in
  Alcotest.(check int) "no flow" 0 r.Maxflow_ipm.value

let test_antiparallel_arcs () =
  (* The symmetrized relaxation must not confuse antiparallel pairs. *)
  let g =
    Digraph.create 3
      [ arc 0 1 2 0; arc 1 0 5 0; arc 1 2 2 0; arc 2 1 5 0 ]
  in
  let r = Maxflow_ipm.max_flow g ~s:0 ~t:2 in
  Alcotest.(check int) "exact" (Dinic.max_flow_value g ~s:0 ~t:2)
    r.Maxflow_ipm.value

let test_sssp_dijkstra_vs_bellman () =
  let g = Graph_gen.random_network ~seed:44L 15 40 5 in
  let d1, _ = Sssp.dijkstra g ~sources:[ 0 ] () in
  match Sssp.bellman_ford g ~sources:[ 0 ] () with
  | None -> Alcotest.fail "no negative cycles here"
  | Some (d2, _) ->
    Array.iteri
      (fun v x ->
        if Float.abs (x -. d2.(v)) > 1e-9 && x <> d2.(v) then
          Alcotest.failf "distance mismatch at %d: %f vs %f" v x d2.(v))
      d1

let test_sssp_path_reconstruction () =
  let g =
    Digraph.create 4 [ arc 0 1 1 1; arc 1 2 1 1; arc 2 3 1 1; arc 0 3 1 10 ]
  in
  let dist, parent = Sssp.dijkstra g ~sources:[ 0 ] () in
  Alcotest.(check (float 1e-9)) "short way" 3. dist.(3);
  Alcotest.(check (list int)) "path arcs" [ 0; 1; 2 ]
    (Sssp.path_to ~parent g 3)

let test_sssp_multi_source () =
  let g = Digraph.create 4 [ arc 0 2 1 5; arc 1 2 1 1; arc 2 3 1 1 ] in
  let dist, _ = Sssp.dijkstra g ~sources:[ 0; 1 ] () in
  Alcotest.(check (float 1e-9)) "nearest source wins" 2. dist.(3)

let test_sssp_usable_mask () =
  let g = Digraph.create 3 [ arc 0 1 1 1; arc 1 2 1 1; arc 0 2 1 1 ] in
  let dist, _ = Sssp.dijkstra g ~usable:(fun id -> id <> 2) ~sources:[ 0 ] () in
  Alcotest.(check (float 1e-9)) "detour forced" 2. dist.(2)

let test_decompose_pure_cycle () =
  let g =
    Digraph.create 3 [ arc 0 1 1 0; arc 1 2 1 0; arc 2 0 1 0 ]
  in
  (* A circulation with no s-t component. *)
  let items = Decompose.decompose g ~s:0 ~t:2 [| 1.; 1.; 1. |] in
  let cycles =
    List.filter (function Decompose.Cycle _ -> true | _ -> false) items
  in
  Alcotest.(check bool) "found the cycle" true (List.length cycles >= 1)

let test_electrical_solver_rounds_reported () =
  let g = Graph_gen.connected_gnp ~seed:46L 15 0.4 in
  let b = Linalg.Vec.sub (Linalg.Vec.basis 15 0) (Linalg.Vec.basis 15 14) in
  let r =
    Electrical.compute ~solver:(Electrical.Cg 1e-10) ~support:g
      ~resistance:(fun _ -> 1.) ~b ()
  in
  Alcotest.(check bool) "rounds = iterations" true
    (r.Electrical.solver_rounds = r.Electrical.solver_iterations)

let more_flow_qcheck =
  let open QCheck in
  [
    Test.make ~name:"excess sums to zero" ~count:40 small_nat
      (fun seed ->
        let g = Graph_gen.random_network ~seed:(Int64.of_int (seed + 400)) 10 20 5 in
        let f, _ = Dinic.max_flow g ~s:0 ~t:9 in
        Float.abs (Array.fold_left ( +. ) 0. (Flow.excess g f)) < 1e-9);
    Test.make ~name:"dinic flow feasible and maximal" ~count:40 small_nat
      (fun seed ->
        let g = Graph_gen.random_network ~seed:(Int64.of_int (seed + 401)) 12 28 6 in
        let f, v = Dinic.max_flow g ~s:0 ~t:11 in
        Flow.is_feasible g ~s:0 ~t:11 ~f
        && int_of_float (Float.round (Flow.value g ~s:0 ~f)) = v);
    Test.make ~name:"min cut value = max flow value" ~count:40 small_nat
      (fun seed ->
        let g = Graph_gen.random_network ~seed:(Int64.of_int (seed + 402)) 10 24 5 in
        let v = Dinic.max_flow_value g ~s:0 ~t:9 in
        let cut = Dinic.min_cut g ~s:0 ~t:9 in
        let cut_cap =
          Array.to_list (Digraph.arcs g)
          |> List.fold_left
               (fun acc a ->
                 if cut.(a.Digraph.src) && not cut.(a.Digraph.dst) then
                   acc + a.Digraph.cap
                 else acc)
               0
        in
        cut_cap = v);
    Test.make ~name:"decompose reconstructs dinic flows" ~count:30 small_nat
      (fun seed ->
        let g = Graph_gen.random_network ~seed:(Int64.of_int (seed + 403)) 10 22 4 in
        let f, _ = Dinic.max_flow g ~s:0 ~t:9 in
        let back = Decompose.accumulate g (Decompose.decompose g ~s:0 ~t:9 f) in
        Linalg.Vec.equal ~eps:1e-6 f back);
  ]

let suite =
  suite
  @ [
      Alcotest.test_case "flow helpers" `Quick test_flow_helpers;
      Alcotest.test_case "capacity violation" `Quick
        test_flow_capacity_violation;
      Alcotest.test_case "zero-capacity arcs" `Quick test_zero_capacity_arcs;
      Alcotest.test_case "single arc" `Quick test_single_arc_network;
      Alcotest.test_case "disconnected s-t" `Quick test_disconnected_st;
      Alcotest.test_case "antiparallel arcs" `Quick test_antiparallel_arcs;
      Alcotest.test_case "dijkstra = bellman-ford" `Quick
        test_sssp_dijkstra_vs_bellman;
      Alcotest.test_case "sssp path reconstruction" `Quick
        test_sssp_path_reconstruction;
      Alcotest.test_case "sssp multi-source" `Quick test_sssp_multi_source;
      Alcotest.test_case "sssp usable mask" `Quick test_sssp_usable_mask;
      Alcotest.test_case "decompose pure cycle" `Quick test_decompose_pure_cycle;
      Alcotest.test_case "electrical rounds reported" `Quick
        test_electrical_solver_rounds_reported;
    ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) more_flow_qcheck

let test_rounding_delta_one () =
  (* Δ = 1: already-integral flows are the only valid input; no levels. *)
  let g = diamond () in
  let f = [| 1.; 0.; 1.; 0. |] in
  let r = Rounding.Flow_rounding.round g ~s:0 ~t:3 ~delta:1. f in
  Alcotest.(check int) "no levels" 0 r.Rounding.Flow_rounding.levels;
  Alcotest.(check bool) "unchanged" true
    (Linalg.Vec.equal f r.Rounding.Flow_rounding.f)

let test_rounding_rejects_negative () =
  let g = diamond () in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Rounding.Flow_rounding.round g ~s:0 ~t:3 ~delta:0.5
            [| -0.5; 0.; 0.; 0. |]);
       false
     with Invalid_argument _ -> true)

let test_chebyshev_convergence_rate () =
  (* Error after k iterations decays at least like the Chebyshev rate
     2·((√κ−1)/(√κ+1))^k on a diagonal system with known spectrum. *)
  let kappa = 25. in
  let n = 6 in
  let diag = Array.init n (fun i -> 1. /. kappa +. (float_of_int i /. float_of_int (n - 1)) *. (1. -. 1. /. kappa)) in
  let apply v = Array.mapi (fun i x -> diag.(i) *. x) v in
  let b = Array.make n 1. in
  let xstar = Array.mapi (fun i x -> x /. diag.(i)) b in
  let rate = (sqrt kappa -. 1.) /. (sqrt kappa +. 1.) in
  List.iter
    (fun k ->
      let x, _ =
        Linalg.Chebyshev.solve ~max_iters:k ~tol:0. ~apply_a:apply
          ~solve_b:(fun v -> v) ~kappa b
      in
      let err = Linalg.Vec.dist2 x xstar /. Linalg.Vec.norm2 xstar in
      let bound = 2.5 *. (rate ** float_of_int k) in
      if err > bound then
        Alcotest.failf "after %d iters: err %g > Chebyshev bound %g" k err
          bound)
    [ 4; 8; 16 ]

let suite =
  suite
  @ [
      Alcotest.test_case "rounding delta=1" `Quick test_rounding_delta_one;
      Alcotest.test_case "rounding rejects negative" `Quick
        test_rounding_rejects_negative;
      Alcotest.test_case "chebyshev convergence rate" `Quick
        test_chebyshev_convergence_rate;
    ]
