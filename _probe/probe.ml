let () =
  let r = Analysis.Rule.suppressed Analysis.Rule.L1 "let x = Obj.magic 0 (* cc_lint: allow L1 **)" in
  Printf.printf "result: %b\n" r
